"""Streamed out-of-core training, bitwise-equal to materialized fit.

:func:`fit_stream` trains a :class:`~repro.core.model.DeepMapClassifier`
on a :class:`~repro.datasets.streaming.StreamingGraphDataset` without
ever materializing the full graph list or the full ``(n, w*r, m)``
tensor.  It mirrors ``DeepMapClassifier.fit`` stage for stage:

1. **Vocabulary pass** — shards are regenerated from seeds (behind the
   bounded prefetcher) and their vertex feature counts extracted; the
   substructure totals, the ``max_features`` truncation and the frozen
   vocabulary come out identical to the materialized path because the
   extractors are batch-independent, integer totals are order-exact,
   and ``FeatureVocabulary.freeze`` sorts keys (insertion order never
   matters).  The same pass tracks ``max(g.n)`` for the encoder width.
2. **Encode pass** — each shard's tensor is built once and spilled to
   the feature-map cache (:class:`~repro.stream.shards.EncodedShardStore`);
   per-shard encodes equal slices of the full encode (the pipeline's
   documented chunk invariance).
3. **Training** — the Trainer consumes a
   :class:`~repro.stream.shards.StreamEncodedInputs`: identical RNG
   choreography (network init, then the trainer's shuffle seed drawn
   from the same stream), identical shuffle permutations, and
   ``take_rows`` gathers bitwise-equal batches, so weights, history and
   predictions match the materialized fit exactly.
   ``tests/equivalence/test_stream_equiv.py`` asserts all of this.

Peak RSS stays bounded by (LRU-resident shards + one batch + the CNN);
the Trainer's streaming mode samples it into the ``resource_*`` obs
gauges throughout.
"""

from __future__ import annotations

import numpy as np

from repro import cache as cache_mod
from repro import obs
from repro.core.architecture import build_deepmap_cnn
from repro.core.pipeline import DeepMapEncoder
from repro.datasets.streaming import StreamingGraphDataset
from repro.features.vertex_maps import cached_vertex_counts
from repro.features.vocabulary import FeatureVocabulary
from repro.nn.model import Trainer
from repro.stream.prefetch import ShardPrefetcher
from repro.stream.shards import (
    EncodedShardStore,
    StreamEncodedInputs,
    make_spool_cache,
)
from repro.utils.rng import as_rng

__all__ = ["fit_stream"]


def fit_stream(
    model,
    stream: StreamingGraphDataset,
    shard_size: int = 64,
    prefetch_depth: int = 2,
    max_restarts: int = 2,
    epoch_callback=None,
    cache=None,
):
    """Train ``model`` on ``stream`` out of core; returns ``model``.

    Parameters
    ----------
    model:
        An unfitted :class:`~repro.core.model.DeepMapClassifier`.
    stream:
        ``make_dataset(name, scale, seed, stream=True)``.
    shard_size:
        Graphs per encoded shard (the unit of regeneration, caching and
        prefetch).
    prefetch_depth:
        Bounded prefetch queue capacity for both passes.
    max_restarts:
        Prefetch-worker deaths tolerated before synchronous degradation.
    cache:
        Disk-backed :class:`~repro.cache.FeatureMapCache`; defaults to
        ``model.cache``, then the process cache, then a private
        temp-dir spool removed when the fit returns.
    """
    y = stream.labels()
    cache = cache if cache is not None else model.cache
    cache = cache if cache is not None else cache_mod.get_cache()
    spool = None
    if cache is None or cache.cache_dir is None:
        cache, spool = make_spool_cache()
    try:
        with obs.span(
            "fit_stream",
            model=f"deepmap-{model.extractor.name}",
            graphs=len(stream),
            shard_size=shard_size,
        ):
            model.classes_ = np.unique(y)
            class_index = {int(c): i for i, c in enumerate(model.classes_)}
            targets = np.array([class_index[int(v)] for v in y])

            # Pass 1: streamed vocabulary + encoder width.
            totals: dict = {}
            max_nodes = 0
            num_shards = stream.num_shards(shard_size)

            def produce_counts(s: int):
                start = s * shard_size
                shard = stream.shard(start, min(start + shard_size, len(stream)))
                counts = cached_vertex_counts(
                    model.extractor, shard.graphs, cache=cache
                )
                return counts, max(g.n for g in shard.graphs)

            with obs.span(
                "stream_vocab_fit", extractor=model.extractor.name, shards=num_shards
            ):
                prefetcher = ShardPrefetcher(
                    produce_counts,
                    num_shards,
                    depth=prefetch_depth,
                    max_restarts=max_restarts,
                )
                with prefetcher:
                    for _, (counts, shard_max) in prefetcher:
                        max_nodes = max(max_nodes, shard_max)
                        for vertex_counts in counts:
                            for counter in vertex_counts:
                                for key, value in counter.items():
                                    totals[key] = totals.get(key, 0) + value
            keys = totals.keys()
            if model.max_features is not None and len(totals) > model.max_features:
                # Same most-frequent truncation (and tie-break) as the
                # materialized ``_feature_matrices_inner``.
                keys = sorted(totals, key=lambda k: (-totals[k], repr(k)))
                keys = keys[: model.max_features]
            vocab = FeatureVocabulary()
            vocab.add_all(keys)
            model.vocabulary_ = vocab.freeze()
            model.encoder_ = DeepMapEncoder(
                r=model.r, ordering=model.ordering
            ).fit_width([max_nodes])

            # Pass 2: encode every shard once, spilling to the cache.
            store = EncodedShardStore(
                stream,
                model.extractor,
                model.vocabulary_,
                model.encoder_,
                shard_size,
                cache=cache,
            )
            store.warm(prefetch_depth=prefetch_depth, max_restarts=max_restarts)
            inputs = StreamEncodedInputs(store)

            # Training: identical RNG choreography to the materialized
            # ``DeepMapClassifier.fit`` (init rng, then the trainer's
            # shuffle seed from the same stream).
            rng = as_rng(model.seed)
            model.network_ = build_deepmap_cnn(
                m=store.m,
                r=model.r,
                num_classes=model.classes_.size,
                readout=model.readout,
                w=store.w,
                rng=rng,
            )
            trainer = Trainer(
                batch_size=model.batch_size,
                epochs=model.epochs,
                seed=rng.integers(0, 2**31 - 1),
            )
            with obs.span(
                "train",
                epochs=model.epochs,
                batch_size=model.batch_size,
                streamed=True,
            ):
                model.history_ = trainer.fit(
                    model.network_, inputs, targets, epoch_callback=epoch_callback
                )
    finally:
        if spool is not None:
            spool.cleanup()
    return model
