"""Bounded-prefetch background producer with crash requeue + degradation.

:class:`ShardPrefetcher` runs ``produce(index)`` for ``index = 0..n-1``
on a single background thread, buffering at most ``depth`` results in a
blocking queue (backpressure: the worker stalls once the consumer falls
``depth`` items behind, so prefetching never holds more than
``depth + 1`` produced-but-unconsumed items alive).  The consumer
iterates ``(index, value)`` pairs strictly in index order.

Failure semantics mirror the fold-pool idiom of
:mod:`repro.parallel` (worker death → requeue unfinished work → bounded
retries → degrade to the caller's thread):

* The worker advances its position only *after* a result is safely in
  the queue, so a crash at position ``p`` loses nothing — every result
  ``< p`` is either consumed or buffered, and a fresh worker resumes at
  exactly ``p`` (requeue-from-first-unproduced).
* After ``max_restarts`` worker deaths beyond the first, the prefetcher
  **degrades to synchronous iteration**: remaining items are produced
  inline on the consumer's thread, which cannot die silently.  The
  stream still completes, in order, with identical values — callers pay
  latency, never correctness.
* Deaths are only ever observed at queue boundaries, so results are
  deterministic for any interleaving: the value stream is identical
  with prefetching on, off, restarted, or degraded.

The worker body is a ``prefetch_worker`` injection point for the
:mod:`repro.resilience.faults` DSL, matched on the item index:
``raise@prefetch_worker:2`` crashes the worker as it starts item 2
(recorded as an error), and ``kill@prefetch_worker:2`` simulates
abrupt, silent thread death (no traceback, no cleanup) via the DSL's
``kill_action`` hook — a thread cannot ``os._exit`` alone.  Injected
faults fire only in the background worker; the degraded inline path
deliberately skips the check so an epoch always completes.
"""

from __future__ import annotations

import queue
import threading

from repro import obs
from repro.resilience import faults
from repro.utils.validation import check_positive

__all__ = ["FAULT_POINT", "ShardPrefetcher"]

#: Faults-DSL injection point fired at the top of each worker iteration.
FAULT_POINT = "prefetch_worker"


class _WorkerKilled(BaseException):
    """Abrupt worker death injected by a ``kill@prefetch_worker`` fault.

    A ``BaseException`` (like the process-level ``os._exit`` it stands
    in for) so no defensive ``except Exception`` inside ``produce`` can
    absorb it; the worker loop catches it silently — death without a
    recorded error is exactly what distinguishes ``kill`` from
    ``raise``.
    """


def _kill_worker(spec) -> None:
    raise _WorkerKilled(spec.spec_id)


class ShardPrefetcher:
    """Iterate ``produce(0..n-1)`` with bounded background prefetch.

    Parameters
    ----------
    produce:
        Callable ``index -> value``; must be pure per index (it is
        retried after a worker death and used inline after
        degradation).
    num_items:
        Number of items to produce.
    depth:
        Queue capacity — the maximum number of finished items waiting
        for the consumer.
    max_restarts:
        Worker deaths tolerated before degrading to synchronous
        production (the first start is not a restart).
    """

    def __init__(
        self,
        produce,
        num_items: int,
        depth: int = 2,
        max_restarts: int = 2,
    ) -> None:
        check_positive("depth", depth)
        if num_items < 0:
            raise ValueError(f"num_items must be >= 0, got {num_items}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.produce = produce
        self.num_items = num_items
        self.depth = depth
        self.max_restarts = max_restarts
        self.restarts = 0
        self.degraded = False
        #: High-water mark of produced-but-unconsumed items (backpressure
        #: proof: never exceeds ``depth + 1`` — the queue plus the one
        #: result in the worker's hands).
        self.max_ahead = 0
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._next_pos = 0  # first index not yet successfully enqueued
        self._delivered = 0  # items handed to the consumer
        self._closed = threading.Event()
        self._thread: threading.Thread | None = None
        self._poll_s = 0.02

    # -- lifecycle ------------------------------------------------------
    def _start_worker(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-stream-prefetch", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the worker and release the queue (idempotent)."""
        self._closed.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ShardPrefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker ---------------------------------------------------------
    def _run(self) -> None:
        try:
            while not self._closed.is_set():
                pos = self._next_pos
                if pos >= self.num_items:
                    return
                faults.check(FAULT_POINT, pos, kill_action=_kill_worker)
                value = self.produce(pos)
                while True:
                    if self._closed.is_set():
                        return
                    try:
                        self._queue.put((pos, value), timeout=self._poll_s)
                        break
                    except queue.Full:
                        continue
                self._next_pos = pos + 1
                self.max_ahead = max(self.max_ahead, self._next_pos - self._delivered)
                obs.counter("stream_shards_prefetched_total").inc()
        except _WorkerKilled:
            return  # abrupt silent death: no error recorded, by design
        except BaseException:
            obs.counter("stream_prefetch_worker_errors_total").inc()
            return

    # -- consumer -------------------------------------------------------
    def _on_worker_death(self) -> None:
        self._thread = None
        self.restarts += 1
        if self.restarts > self.max_restarts:
            self.degraded = True
            obs.counter("stream_prefetch_degradations_total").inc()
            obs.event(
                "prefetch_degraded",
                restarts=self.restarts,
                position=self._next_pos,
                remaining=self.num_items - self._next_pos,
            )
        else:
            obs.counter("stream_prefetch_restarts_total").inc()
            obs.event(
                "prefetch_worker_restarted",
                attempt=self.restarts,
                position=self._next_pos,
            )
            self._start_worker()

    def __iter__(self) -> "ShardPrefetcher":
        return self

    def __next__(self):
        if self._delivered >= self.num_items:
            self.close()
            raise StopIteration
        if self._thread is None and not self.degraded:
            self._start_worker()
        while not self.degraded:
            thread = self._thread
            try:
                pos, value = self._queue.get(timeout=self._poll_s)
            except queue.Empty:
                if thread is not None and thread.is_alive():
                    continue
                if self._queue.qsize() > 0:
                    continue  # a result landed between the two checks
                # Queue drained and the worker is gone.  A clean exit only
                # happens with every item enqueued, so an undelivered
                # remainder means the worker died at ``_next_pos``.
                self._on_worker_death()
            else:
                assert pos == self._delivered, (pos, self._delivered)
                self._delivered += 1
                return pos, value
        # Degraded: produce inline, in order, on the consumer's thread.
        pos = self._delivered
        value = self.produce(pos)
        self._delivered += 1
        return pos, value
