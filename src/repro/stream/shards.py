"""Out-of-core encoded shards behind the two-tier feature-map cache.

:class:`EncodedShardStore` turns a :class:`StreamingGraphDataset` plus a
fitted vocabulary/encoder into a row-addressable tensor source:

* :meth:`warm` encodes every shard once — graphs are regenerated from
  their seeds, vertex feature maps extracted, and the ``(k, w*r, m)``
  tensor built by :class:`~repro.core.pipeline.DeepMapEncoder` — routing
  everything through a :class:`~repro.cache.FeatureMapCache` under the
  **unchanged** content-addressed key scheme (``counts``/``enc``
  namespaces, keyed by shard content).  The store records each shard's
  ``enc`` key, which is all it needs to reload the tensor later.
* :meth:`tensors` serves a shard by key: memory-LRU hit → the in-memory
  payload; disk hit → a *memory-mapped* read-only view of the ``.npz``
  entry (resident cost ≈ the pages a batch actually touches); evicted
  or corrupted entry → regenerate + re-encode the shard from seeds (a
  cache miss is never an error, exactly as everywhere else in the
  repo).
* :class:`StreamEncodedInputs` is the duck-typed Trainer input: it
  exposes ``shape`` and ``take_rows(idx)``, gathering arbitrary row
  subsets by grouping indices per shard — bitwise-identical to fancy
  indexing the fully materialized ``(n, w*r, m)`` tensor.

Peak memory is therefore bounded by ``memory_items`` shard payloads
(the cache's LRU tier) plus one mini-batch, independent of dataset
size.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import obs
from repro.cache import FeatureMapCache
from repro.core.pipeline import DeepMapEncoder, EncodedDataset
from repro.datasets.streaming import StreamingGraphDataset
from repro.features.vertex_maps import cached_vertex_counts
from repro.stream.prefetch import ShardPrefetcher
from repro.utils.validation import check_positive

__all__ = [
    "EncodedShardStore",
    "StreamEncodedInputs",
    "make_spool_cache",
    "partition_bounds",
]


def partition_bounds(n: int, num_parts: int, index: int) -> tuple[int, int]:
    """Bounds ``[start, stop)`` of contiguous partition ``index`` of ``n``.

    The balanced split ``(i*n//P, (i+1)*n//P)``: parts differ in size by
    at most one, cover ``range(n)`` exactly, and depend only on
    ``(n, num_parts, index)`` — a dist worker handed ``index/num_parts``
    derives its shard of a :class:`StreamingGraphDataset` without any
    state from the process that launched it (host-agnostic handoff).
    """
    check_positive("num_parts", num_parts)
    if not 0 <= index < num_parts:
        raise IndexError(f"partition {index} out of range for {num_parts}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return index * n // num_parts, (index + 1) * n // num_parts

#: Memory-LRU capacity (shard payloads) for a store-owned spool cache.
#: Two is the sweet spot measured in benchmarks/bench_stream_pipeline.py:
#: evicted payloads reload as mmap views (cheap), while a deeper LRU
#: pins whole shard tensors resident for no throughput gain.
DEFAULT_RESIDENT_SHARDS = 2


def make_spool_cache(memory_items: int = DEFAULT_RESIDENT_SHARDS):
    """A private disk-backed cache in a temp dir, plus its holder.

    Used when no process cache with a disk tier is configured: streaming
    out of core *requires* a disk tier to spill encoded shards to.
    Returns ``(cache, tmpdir)`` — keep ``tmpdir`` referenced for the
    cache's lifetime (its destructor removes the directory).
    """
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-stream-spool-")
    return FeatureMapCache(cache_dir=tmpdir.name, memory_items=memory_items), tmpdir


class EncodedShardStore:
    """Encoded ``(shard, w*r, m)`` tensors, cached and reloadable by key.

    Parameters
    ----------
    stream:
        The lazy dataset.
    extractor:
        Vertex feature extractor (must be batch-independent, which all
        repo extractors are — a shard's features equal the same graphs'
        features inside the full dataset).
    vocabulary:
        The frozen :class:`~repro.features.vocabulary.FeatureVocabulary`
        from the streamed vocabulary pass.
    encoder:
        A fitted :class:`~repro.core.pipeline.DeepMapEncoder` (``w``
        fixed).
    shard_size:
        Graphs per shard.
    cache:
        A :class:`~repro.cache.FeatureMapCache` **with a disk tier**.
    """

    def __init__(
        self,
        stream: StreamingGraphDataset,
        extractor,
        vocabulary,
        encoder: DeepMapEncoder,
        shard_size: int,
        cache: FeatureMapCache,
    ) -> None:
        check_positive("shard_size", shard_size)
        if cache.cache_dir is None:
            raise ValueError(
                "EncodedShardStore needs a disk-backed cache to spill shards "
                "to (see make_spool_cache)"
            )
        assert encoder.w is not None, "encoder must be fitted before sharding"
        self.stream = stream
        self.extractor = extractor
        self.vocabulary = vocabulary
        self.encoder = encoder
        self.shard_size = shard_size
        self.cache = cache
        self.n = len(stream)
        self.num_shards = stream.num_shards(shard_size)
        self.w = int(encoder.w)
        self.r = int(encoder.r)
        self.m = int(vocabulary.size)
        self._keys: list[str | None] = [None] * self.num_shards
        self.reencodes = 0  # shards regenerated after a cache miss

    # -- per-shard encode ------------------------------------------------
    def _bounds(self, s: int) -> tuple[int, int]:
        if not 0 <= s < self.num_shards:
            raise IndexError(f"shard {s} out of range for {self.num_shards}")
        start = s * self.shard_size
        return start, min(start + self.shard_size, self.n)

    def encode_shard(self, s: int) -> EncodedDataset:
        """Generate, featurize and encode shard ``s`` (cache-routed).

        Records the shard's ``enc`` cache key so later :meth:`tensors`
        calls can reload the payload without regenerating graphs.
        """
        start, stop = self._bounds(s)
        with obs.span("stream_encode_shard", shard=s, graphs=stop - start):
            shard = self.stream.shard(start, stop)
            counts = cached_vertex_counts(
                self.extractor, shard.graphs, cache=self.cache
            )
            matrices = [self.vocabulary.vectorize_rows(vc) for vc in counts]
            self._keys[s] = self.encoder.encode_key(shard.graphs, matrices)
            encoded = self.encoder.encode(shard.graphs, matrices, cache=self.cache)
        obs.counter("stream_graphs_encoded_total").inc(stop - start)
        return encoded

    def warm(self, prefetch_depth: int = 2, max_restarts: int = 2) -> "EncodedShardStore":
        """Encode every shard once, through the bounded prefetcher.

        The background worker does the expensive regenerate+encode while
        the consumer thread merely records keys; worker death degrades
        to inline encoding after ``max_restarts`` (see
        :class:`~repro.stream.prefetch.ShardPrefetcher`).  Tensors are
        *not* retained — they live in the cache tiers only.
        """
        with obs.span(
            "stream_warm", shards=self.num_shards, shard_size=self.shard_size
        ):
            prefetcher = ShardPrefetcher(
                lambda s: self.encode_shard(s).tensors.shape,
                self.num_shards,
                depth=prefetch_depth,
                max_restarts=max_restarts,
            )
            with prefetcher:
                for _ in prefetcher:
                    pass
        return self

    # -- row access ------------------------------------------------------
    def tensors(self, s: int) -> np.ndarray:
        """The ``(k, w*r, m)`` tensor of shard ``s`` (cache-first)."""
        key = self._keys[s]
        if key is not None:
            payload = self.cache.get(key, namespace="enc")
            if payload is not None:
                return payload["tensors"]
        # Evicted from both tiers (or corrupted, or never warmed):
        # regenerate from seeds and re-encode — a miss, not an error.
        self.reencodes += 1
        obs.counter("stream_shard_reencodes_total").inc()
        return self.encode_shard(s).tensors

    def __repr__(self) -> str:
        return (
            f"EncodedShardStore(n={self.n}, shards={self.num_shards}x"
            f"{self.shard_size}, w={self.w}, r={self.r}, m={self.m})"
        )


class StreamEncodedInputs:
    """Row-addressable encoded dataset backed by an :class:`EncodedShardStore`.

    Duck-types the slice of the ndarray protocol the Trainer uses:
    ``shape`` (for row counts) and ``take_rows(idx)`` (for mini-batch
    gathers).  ``take_rows`` groups the requested rows by shard, loads
    each touched shard once (memory LRU → mmap'd disk → regenerate) and
    scatters rows into a fresh float64 batch — bitwise what
    ``full_tensor[idx]`` returns, at ``O(batch + touched shards)``
    memory instead of ``O(dataset)``.
    """

    def __init__(self, store: EncodedShardStore) -> None:
        self.store = store
        self.shape = (store.n, store.w * store.r, store.m)

    def __len__(self) -> int:
        return self.shape[0]

    def take_rows(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        out = np.empty((idx.size, self.shape[1], self.shape[2]), dtype=np.float64)
        if idx.size == 0:
            return out
        shard_of = idx // self.store.shard_size
        for s in np.unique(shard_of):
            mask = shard_of == s
            block = self.store.tensors(int(s))
            out[mask] = block[idx[mask] - int(s) * self.store.shard_size]
        obs.counter("stream_rows_gathered_total").inc(int(idx.size))
        return out

    def gauges(self) -> dict:
        """Live gauges for the resource sampler's ``extra`` hook."""
        return {
            "stream_resident_shard_payloads": float(len(self.store.cache)),
            "stream_shard_reencodes": float(self.store.reencodes),
        }
