"""From-scratch kernel C-SVM (LIBSVM substitute): SMO solver + classifier."""

from repro.svm.smo import SMOResult, solve_smo
from repro.svm.svc import DEFAULT_C_GRID, KernelSVC, select_c

__all__ = ["SMOResult", "solve_smo", "KernelSVC", "select_c", "DEFAULT_C_GRID"]
