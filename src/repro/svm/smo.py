"""SMO solver for the dual C-SVM with maximal-violating-pair selection.

Solves, for a precomputed kernel matrix ``K`` and labels ``y in {-1, +1}``:

    min_a  1/2 a^T Q a - e^T a      (Q_ij = y_i y_j K_ij)
    s.t.   0 <= a_i <= C,   y^T a = 0

This is the optimisation problem LIBSVM solves, and we use LIBSVM's
working-set strategy (Keerthi et al. 2001; Fan et al. 2005, WSS1): each
iteration analytically optimises the pair of multipliers with the largest
KKT violation, updating a maintained gradient in O(n).  Convergence is
declared when the maximal violation drops below ``tol``.

The paper's kernel baselines use a binary C-SVM with per-fold C selection;
``repro.svm.svc`` builds that classifier on top of this solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SMOResult", "solve_smo"]


@dataclass
class SMOResult:
    """Solution of the dual problem.

    Attributes
    ----------
    alpha:
        Dual coefficients, ``0 <= alpha_i <= C``.
    bias:
        Intercept ``b`` of the decision function
        ``f(x) = sum_i alpha_i y_i K(x_i, x) + b``.
    iterations:
        Number of pair optimisations performed.
    converged:
        Whether the maximal KKT violation fell below tolerance.
    """

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool

    def support_indices(self, tol: float = 1e-8) -> np.ndarray:
        """Indices with non-negligible dual weight."""
        return np.nonzero(self.alpha > tol)[0]


def solve_smo(
    kernel: np.ndarray,
    y: np.ndarray,
    c: float,
    tol: float = 1e-3,
    max_iter: int | None = None,
    seed: int | None = 0,  # kept for API stability; the solver is deterministic
) -> SMOResult:
    """Run SMO with maximal-violating-pair selection.

    Parameters
    ----------
    kernel:
        ``(n, n)`` symmetric PSD matrix.
    y:
        ``(n,)`` labels in ``{-1, +1}``.
    c:
        Box constraint ``C > 0``.
    tol:
        Stopping tolerance on the maximal KKT violation.
    max_iter:
        Hard cap on pair optimisations (scaled guard; typical problems
        finish in a few times ``n`` iterations).
    """
    check_positive("c", c)
    k = np.asarray(kernel, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = y.size
    if k.shape != (n, n):
        raise ValueError(f"kernel shape {k.shape} does not match {n} labels")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be -1 or +1")
    if n == 0:
        return SMOResult(np.zeros(0), 0.0, 0, True)
    if max_iter is None:
        # WSS1 converges linearly; the tail needs many cheap iterations on
        # hard problems, so scale the guard with the problem size.
        max_iter = max(20000, 200 * n)

    alpha = np.zeros(n)
    # Gradient of the dual objective: g = Q alpha - e; starts at -e.
    grad = -np.ones(n)

    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        i, j, violation = _select_pair(y, alpha, grad, c)
        if violation <= tol:
            converged = True
            it -= 1
            break

        # Two-variable subproblem on (i, j) — LIBSVM's analytic update.
        # The curvature along the feasible direction is the squared kernel
        # distance ||phi_i - phi_j||^2 for BOTH label configurations.
        quad = max(k[i, i] + k[j, j] - 2.0 * k[i, j], 1e-12)
        # Progress along the feasible direction.
        delta = (-y[i] * grad[i] + y[j] * grad[j]) / quad

        a_i_old, a_j_old = alpha[i], alpha[j]
        # Move alpha_i by y_i*delta, alpha_j by -y_j*delta, then clip to box
        # while preserving the equality constraint.
        da_i = y[i] * delta
        da_j = -y[j] * delta
        a_i = a_i_old + da_i
        a_j = a_j_old + da_j

        # Clip jointly: the pair moves on the line a_i y_i + a_j y_j = const.
        if y[i] == y[j]:
            total = a_i_old + a_j_old
            a_i = float(np.clip(a_i, max(0.0, total - c), min(c, total)))
            a_j = total - a_i
        else:
            diff = a_i_old - a_j_old
            a_i = float(np.clip(a_i, max(0.0, diff), min(c, c + diff)))
            a_j = a_i - diff
        # Snap to exact bounds: float residue (~1e-16) would otherwise make
        # an at-bound multiplier look movable to the working-set selection.
        a_i = 0.0 if a_i < 1e-12 else (c if a_i > c - 1e-12 else a_i)
        a_j = 0.0 if a_j < 1e-12 else (c if a_j > c - 1e-12 else a_j)

        d_i = a_i - a_i_old
        d_j = a_j - a_j_old
        if abs(d_i) < 1e-14 and abs(d_j) < 1e-14:
            # The selected pair cannot move (box corner): numerically stuck.
            break
        alpha[i], alpha[j] = a_i, a_j
        # Gradient update: g += Q[:, i] d_i + Q[:, j] d_j.
        grad += (y * k[:, i]) * (y[i] * d_i) + (y * k[:, j]) * (y[j] * d_j)

    bias = _compute_bias(y, alpha, grad, c, tol)
    return SMOResult(alpha=alpha, bias=bias, iterations=it, converged=converged)


def _select_pair(
    y: np.ndarray, alpha: np.ndarray, grad: np.ndarray, c: float
) -> tuple[int, int, float]:
    """Maximal-violating pair (WSS1).

    ``I_up``: indices whose multiplier can increase along +y direction;
    ``I_down``: indices that can decrease.  The violation is
    ``max_{I_up}(-y g) - min_{I_down}(-y g)``.
    """
    neg_yg = -y * grad
    up = ((y > 0) & (alpha < c)) | ((y < 0) & (alpha > 0))
    down = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < c))
    if not up.any() or not down.any():
        return 0, 0, 0.0
    up_idx = np.nonzero(up)[0]
    down_idx = np.nonzero(down)[0]
    i = int(up_idx[np.argmax(neg_yg[up_idx])])
    j = int(down_idx[np.argmin(neg_yg[down_idx])])
    violation = float(neg_yg[i] - neg_yg[j])
    return i, j, violation


def _compute_bias(
    y: np.ndarray, alpha: np.ndarray, grad: np.ndarray, c: float, tol: float
) -> float:
    """Bias from the KKT conditions at the solution.

    For free (non-bound) multipliers, ``y_i f(x_i) = 1`` exactly, and
    ``-y_i g_i = y_i - f_i + b... `` — in LIBSVM's convention the bias is
    the midpoint of the feasible interval of ``-y g`` values; free
    multipliers pin it exactly.
    """
    neg_yg = -y * grad
    free = (alpha > tol) & (alpha < c - tol)
    if free.any():
        return float(np.mean(neg_yg[free]))
    up = ((y > 0) & (alpha < c - tol)) | ((y < 0) & (alpha > tol))
    down = ((y > 0) & (alpha > tol)) | ((y < 0) & (alpha < c - tol))
    hi = neg_yg[up].max() if up.any() else 0.0
    lo = neg_yg[down].min() if down.any() else 0.0
    return float((hi + lo) / 2.0)
