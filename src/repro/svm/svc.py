"""Kernel C-SVM classifier on precomputed gram matrices.

The paper's graph-kernel baselines are evaluated with "a binary C-SVM
[LIBSVM]" whose ``C`` is "independently tuned from {1, 10, 100, 1000}
using the training data from that fold".  :class:`KernelSVC` reproduces
that classifier (one-vs-rest for the multi-class datasets) and
:func:`select_c` reproduces the per-fold tuning via an internal split.

Gram matrices arrive precomputed (assembled in one GEMM or count-matrix
pass by the kernel layer); ``KernelSVC(validate=True)`` re-checks every
training gram slice for symmetry and positive semidefiniteness via
:func:`repro.kernels.base.validate_gram` before solving — a strict mode
for tests and debugging, off by default because the eigendecomposition
costs more than the SMO solve on small folds.
"""

from __future__ import annotations

import numpy as np

from repro.svm.smo import solve_smo
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_labels, check_positive

__all__ = ["KernelSVC", "select_c", "DEFAULT_C_GRID"]

#: The paper's C grid.
DEFAULT_C_GRID = (1.0, 10.0, 100.0, 1000.0)


class KernelSVC:
    """C-SVM over a precomputed kernel, with one-vs-rest multiclass.

    Usage: ``fit(K_train_train, y_train)`` then
    ``predict(K_test_train)`` where the second matrix holds kernel values
    between test rows and the original training columns.
    """

    def __init__(
        self,
        c: float = 1.0,
        tol: float = 1e-3,
        seed: int | None = 0,
        validate: bool = False,
    ) -> None:
        check_positive("c", c)
        self.c = c
        self.tol = tol
        self.seed = seed
        self.validate = validate
        self.classes_: np.ndarray | None = None
        self._dual_coef: np.ndarray | None = None  # (n_classes, n_train)
        self._bias: np.ndarray | None = None

    def fit(self, kernel: np.ndarray, y: np.ndarray | list) -> "KernelSVC":
        """Train on an ``(n, n)`` gram matrix and integer labels."""
        y = check_labels(y)
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.shape != (y.size, y.size):
            raise ValueError(
                f"kernel shape {kernel.shape} does not match {y.size} labels"
            )
        if self.validate:
            from repro.kernels.base import validate_gram

            validate_gram(kernel)
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        rows = []
        biases = []
        for cls in self.classes_:
            target = np.where(y == cls, 1.0, -1.0)
            result = solve_smo(kernel, target, self.c, tol=self.tol)
            rows.append(result.alpha * target)
            biases.append(result.bias)
        self._dual_coef = np.stack(rows)
        self._bias = np.asarray(biases)
        return self

    def decision_function(self, kernel_rows: np.ndarray) -> np.ndarray:
        """Per-class scores for ``(n_eval, n_train)`` kernel rows."""
        check_fitted(self, "_dual_coef")
        kernel_rows = np.atleast_2d(np.asarray(kernel_rows, dtype=np.float64))
        return kernel_rows @ self._dual_coef.T + self._bias[None, :]

    def predict(self, kernel_rows: np.ndarray) -> np.ndarray:
        """Predicted class labels for ``(n_eval, n_train)`` kernel rows.

        One-vs-rest: the class whose margin is largest wins; for the
        binary case this reduces to the sign of the margin difference
        (the two OVR problems are mirror images).
        """
        scores = self.decision_function(kernel_rows)
        assert self.classes_ is not None
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, kernel_rows: np.ndarray, y: np.ndarray | list) -> float:
        """Accuracy on ``(n_eval, n_train)`` kernel rows."""
        y = check_labels(y)
        return float(np.mean(self.predict(kernel_rows) == y))


def select_c(
    kernel: np.ndarray,
    y: np.ndarray,
    grid: tuple[float, ...] = DEFAULT_C_GRID,
    validation_fraction: float = 0.25,
    seed: int | None = 0,
) -> float:
    """Pick ``C`` from ``grid`` on an internal stratified split of the
    training data (the paper's per-fold tuning protocol).

    Falls back to the first grid value when the training set is too small
    to split with every class on both sides.
    """
    y = check_labels(y)
    rng = as_rng(seed)
    train_idx, val_idx = _stratified_split(y, validation_fraction, rng)
    if train_idx is None or val_idx is None:
        return grid[0]
    best_c, best_acc = grid[0], -1.0
    k_tr = kernel[np.ix_(train_idx, train_idx)]
    k_val = kernel[np.ix_(val_idx, train_idx)]
    for c in grid:
        try:
            model = KernelSVC(c=c, seed=rng).fit(k_tr, y[train_idx])
        except ValueError:
            continue
        acc = model.score(k_val, y[val_idx])
        if acc > best_acc:
            best_acc, best_c = acc, c
    return best_c


def _stratified_split(
    y: np.ndarray, fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Split indices so each class appears on both sides, or (None, None)."""
    train: list[int] = []
    val: list[int] = []
    for cls in np.unique(y):
        idx = np.nonzero(y == cls)[0]
        if idx.size < 2:
            return None, None
        idx = rng.permutation(idx)
        n_val = max(1, int(round(idx.size * fraction)))
        n_val = min(n_val, idx.size - 1)
        val.extend(idx[:n_val].tolist())
        train.extend(idx[n_val:].tolist())
    if len(set(y[train].tolist())) < len(np.unique(y)):
        return None, None
    return np.asarray(sorted(train)), np.asarray(sorted(val))
