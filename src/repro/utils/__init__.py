"""Shared utilities: deterministic RNG handling, validation, timing."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fitted,
    check_labels,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Timer",
    "check_fitted",
    "check_labels",
    "check_positive",
    "check_probability",
]
