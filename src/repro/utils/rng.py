"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_rng` normalises all three into a
``Generator`` so downstream code never touches global numpy state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_rng", "spawn_rngs", "derive_rng"]


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` independent generators.

    Used when a dataset generator or a cross-validation loop needs one
    stream per item so that changing the order of consumption does not
    change what each item sees.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = as_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_rng(seed: int | None, *tokens: bytes) -> np.random.Generator:
    """Generator derived from ``seed`` plus content ``tokens``.

    Unlike :func:`spawn_rngs` — which keys streams by *position* — the
    stream depends only on the seed and the token bytes, so an item (for
    example one graph, identified by its structure) receives the same
    stream no matter where in a dataset it appears, or whether it
    appears alone.  This is what makes per-graph sampling stable enough
    to cache by content.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(repr(seed).encode())
    for token in tokens:
        h.update(b"|")
        h.update(token)
    return np.random.default_rng(int.from_bytes(h.digest(), "big"))
