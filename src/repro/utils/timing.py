"""Wall-clock timing helper used by the runtime benchmarks (Table 5)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start
