"""Wall-clock timing helper used by the runtime benchmarks (Table 5).

Re-exported from :mod:`repro.obs` so the observability subsystem and the
benches share one canonical timing API.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    ``elapsed`` is readable *while the timer is still running* (it is a
    monotonic reading from ``perf_counter``) and freezes at exit.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self._elapsed: float = 0.0
        self._running = False

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self._running = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self._elapsed = time.perf_counter() - self.start
        self._running = False

    @property
    def elapsed(self) -> float:
        """Seconds since ``__enter__`` — live while running, frozen after."""
        if self._running:
            assert self.start is not None
            return time.perf_counter() - self.start
        return self._elapsed
