"""Lightweight argument validation helpers used across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_probability", "check_labels", "check_fitted"]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_labels(y: np.ndarray | list) -> np.ndarray:
    """Validate a 1-D class-label vector and return it as an int array."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("labels must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ValueError("labels must be integers")
        arr = arr.astype(np.int64)
    return arr.astype(np.int64)


def check_fitted(obj: object, attribute: str) -> None:
    """Raise ``RuntimeError`` if ``obj`` lacks a fitted ``attribute``."""
    if getattr(obj, attribute, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted; call fit() before using it"
        )
