"""Shared binary wire layer: checksummed envelopes + length-prefixed frames.

Every self-verifying byte artifact in the repo sits on the same three
primitives, factored out of :mod:`repro.resilience.checkpoint` and
:mod:`repro.core.persistence` so the serving stack and the distributed
runtime (:mod:`repro.dist`) cannot drift apart on framing:

* :func:`blake2b_hexdigest` — the one content-checksum primitive.
  Checkpoints digest their arrays through it, model files digest their
  pickled payload, and every dist protocol frame digests its body.
* **Envelope** (:func:`seal` / :func:`unseal`) — a fixed 30-byte prelude
  (magic, version, flags, BLAKE2b-128 digest, big-endian u64 length)
  followed by the payload.  Truncation, bit rot, or a torn copy is
  detected at open time, never interpreted.
* **Socket framing** (:func:`send_frame` / :func:`recv_frame`) — the
  same envelope streamed over a socket: length-prefixed, so message
  boundaries survive TCP coalescing, and checksummed, so a damaged
  frame raises :class:`WireError` instead of decoding into garbage.

On top of the byte layer, :func:`pack_message` / :func:`unpack_message`
give the dist protocol its payload shape: a JSON-able header dict plus a
``{name: ndarray}`` tensor dict.  Numeric arrays travel as raw
little/native-endian C-order bytes described by a manifest (dtype,
shape) — no pickle on the hot tensor path.  Object-dtype arrays (the
cache's boxed vertex-count payloads) fall back to pickle and are only
decoded when the receiver passes ``allow_pickle=True``; like
:mod:`repro.core.persistence`, the checksum authenticates *integrity*,
not provenance, so only unpack pickled payloads from peers you trust
(the dist protocol is explicit about this — see docs/DISTRIBUTED.md).
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct

import numpy as np

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "PRELUDE_SIZE",
    "DEFAULT_MAX_FRAME",
    "WireError",
    "arrays_nbytes",
    "blake2b_hexdigest",
    "pack_arrays_into",
    "seal",
    "unseal",
    "send_frame",
    "recv_frame",
    "pack_message",
    "unpack_arrays_from",
    "unpack_message",
]

#: Leading magic of every envelope/frame ("RePro Wire").
MAGIC = b"RPRW"

#: Envelope format version; bumped only on incompatible prelude changes.
WIRE_VERSION = 1

#: Digest size (bytes) of the BLAKE2b content checksum in the prelude.
_DIGEST_SIZE = 16

_PRELUDE = struct.Struct(f">4sBB{_DIGEST_SIZE}sQ")

#: Fixed byte length of the envelope prelude.
PRELUDE_SIZE = _PRELUDE.size

#: Default per-frame size ceiling (1 GiB): a corrupt or hostile length
#: field must not make a receiver allocate unboundedly.
DEFAULT_MAX_FRAME = 1 << 30


class WireError(RuntimeError):
    """A frame or envelope is truncated, corrupt, or from another format."""


def blake2b_hexdigest(chunks, digest_size: int = _DIGEST_SIZE) -> str:
    """BLAKE2b hex digest over an iterable of byte chunks.

    The shared content-checksum primitive for self-verifying artifacts:
    checkpoints digest their arrays through it,
    :mod:`repro.core.persistence` digests the pickled model payload so
    :mod:`repro.serve` only ever loads byte-exact models, and the dist
    wire protocol digests every frame body.
    """
    h = hashlib.blake2b(digest_size=digest_size)
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


def _digest(payload: bytes) -> bytes:
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(payload)
    return h.digest()


# ----------------------------------------------------------------------
# Envelope: prelude + payload as one byte string
# ----------------------------------------------------------------------

def seal(payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed envelope (prelude + payload)."""
    return _PRELUDE.pack(
        MAGIC, WIRE_VERSION, 0, _digest(payload), len(payload)
    ) + payload


def _parse_prelude(prelude: bytes, max_bytes: int) -> tuple[bytes, int]:
    """Validate a prelude; returns ``(expected_digest, payload_length)``."""
    magic, version, _flags, digest, length = _PRELUDE.unpack(prelude)
    if magic != MAGIC:
        raise WireError(f"bad wire magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if length > max_bytes:
        raise WireError(f"frame of {length} bytes exceeds cap {max_bytes}")
    return digest, length


def unseal(blob: bytes, max_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """Open an envelope produced by :func:`seal`, verifying the checksum."""
    if len(blob) < PRELUDE_SIZE:
        raise WireError(f"envelope truncated at {len(blob)} bytes")
    digest, length = _parse_prelude(blob[:PRELUDE_SIZE], max_bytes)
    payload = blob[PRELUDE_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"envelope length mismatch: prelude says {length}, "
            f"got {len(payload)} payload bytes"
        )
    if _digest(payload) != digest:
        raise WireError("envelope checksum mismatch: payload is corrupt")
    return payload


# ----------------------------------------------------------------------
# Socket framing
# ----------------------------------------------------------------------

def send_frame(sock, payload: bytes) -> int:
    """Send one sealed frame over ``sock``; returns bytes written."""
    blob = seal(payload)
    sock.sendall(blob)
    return len(blob)


def _recv_exact(sock, n: int, *, at_boundary: bool, on_timeout=None) -> bytes | None:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF *before any byte* when
    ``at_boundary`` (the peer closed between frames); raises
    :class:`WireError` on EOF anywhere else (a torn frame).  With
    ``on_timeout`` set, a socket timeout invokes it and *continues the
    read with the partial buffer intact* — a slow frame is never torn by
    the caller's poll interval; without it, timeouts propagate untouched
    (flow control, not corruption).
    """
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if on_timeout is None:
                raise
            on_timeout()
            continue
        if not chunk:
            if at_boundary and not buf:
                return None
            raise WireError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf += chunk
    return bytes(buf)


def recv_frame(
    sock, max_bytes: int = DEFAULT_MAX_FRAME, on_timeout=None
) -> bytes | None:
    """Receive one frame; ``None`` when the peer closed between frames.

    Verifies the checksum before returning — a damaged frame surfaces as
    :class:`WireError` here, never as misparsed payload downstream.
    ``on_timeout`` turns socket timeouts into callback ticks (see
    :func:`_recv_exact`) — the dist client heartbeats fold claims there
    while a worker computes.
    """
    prelude = _recv_exact(
        sock, PRELUDE_SIZE, at_boundary=True, on_timeout=on_timeout
    )
    if prelude is None:
        return None
    digest, length = _parse_prelude(prelude, max_bytes)
    payload = (
        _recv_exact(sock, length, at_boundary=False, on_timeout=on_timeout)
        if length
        else b""
    )
    if _digest(payload) != digest:
        raise WireError("frame checksum mismatch: payload is corrupt")
    return payload


# ----------------------------------------------------------------------
# Flat tensor buffers: shared-memory tensor handoff
# ----------------------------------------------------------------------

def arrays_nbytes(arrays: dict[str, np.ndarray]) -> int:
    """Total bytes :func:`pack_arrays_into` needs for ``arrays``.

    Callers size a shared-memory segment with this before packing.
    Object-dtype arrays are refused — the flat-buffer path is strictly
    for raw numeric tensors (pickle never crosses a shm segment).
    """
    total = 0
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        if arr.dtype.hasobject:
            raise WireError(f"array {name!r} has object dtype; cannot flat-pack")
        total += arr.nbytes
    return total


def pack_arrays_into(buf, arrays: dict[str, np.ndarray]) -> list[dict]:
    """Copy ``arrays`` into the writable buffer ``buf``; return a manifest.

    The manifest — ``[{name, dtype, shape, offset, nbytes}, ...]`` in
    sorted-name order — is JSON-able, so it travels in a message header
    (e.g. over a pipe) while the tensor bytes themselves sit in a
    :class:`multiprocessing.shared_memory.SharedMemory` segment the
    receiver maps with :func:`unpack_arrays_from` without copying.
    """
    view = memoryview(buf)
    manifest: list[dict] = []
    offset = 0
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        if arr.dtype.hasobject:
            raise WireError(f"array {name!r} has object dtype; cannot flat-pack")
        end = offset + arr.nbytes
        if end > len(view):
            raise WireError(
                f"buffer too small: need {end} bytes, have {len(view)}"
            )
        view[offset:end] = arr.tobytes()
        manifest.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": arr.nbytes,
            }
        )
        offset = end
    return manifest


def unpack_arrays_from(
    buf, manifest: list[dict], *, copy: bool = False
) -> dict[str, np.ndarray]:
    """Rebuild the tensor dict a manifest describes from ``buf``.

    With ``copy=False`` the returned arrays are zero-copy views into
    ``buf`` — valid only while the underlying segment stays mapped, so
    receivers that outlive the segment must pass ``copy=True`` (or copy
    the results they keep).  Malformed manifests raise
    :class:`WireError`, never index garbage.
    """
    view = memoryview(buf)
    arrays: dict[str, np.ndarray] = {}
    for entry in manifest:
        try:
            name = str(entry["name"])
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(d) for d in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed flat-array manifest entry: {exc}") from None
        if dtype.hasobject:
            raise WireError(f"array {name!r} declares object dtype in a flat buffer")
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        if expected != nbytes or offset < 0 or offset + nbytes > len(view):
            raise WireError(f"flat-array manifest for {name!r} is inconsistent")
        arr = np.frombuffer(view, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)), offset=offset).reshape(shape)
        arrays[name] = arr.copy() if copy else arr
    return arrays


# ----------------------------------------------------------------------
# Message payloads: JSON header + tensor dict
# ----------------------------------------------------------------------

def pack_message(header: dict, arrays: dict[str, np.ndarray] | None = None) -> bytes:
    """Encode ``(header, arrays)`` as one frame payload.

    ``header`` must be JSON-able; ``arrays`` maps names to ndarrays.
    Numeric arrays are shipped as described raw bytes; object-dtype
    arrays are pickled (flagged in the manifest, opt-in on decode).
    """
    arrays = arrays or {}
    manifest: list[dict] = []
    segments: list[bytes] = []
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        if arr.dtype.hasobject:
            blob = pickle.dumps(arr, protocol=pickle.HIGHEST_PROTOCOL)
            manifest.append(
                {"name": name, "encoding": "pickle", "nbytes": len(blob)}
            )
        else:
            arr = np.ascontiguousarray(arr)
            blob = arr.tobytes()
            manifest.append(
                {
                    "name": name,
                    "encoding": "raw",
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "nbytes": len(blob),
                }
            )
        segments.append(blob)
    try:
        head = json.dumps(
            {"header": header, "arrays": manifest}, sort_keys=True
        ).encode()
    except (TypeError, ValueError) as exc:
        raise WireError(f"message header is not JSON-able: {exc}") from None
    return struct.pack(">I", len(head)) + head + b"".join(segments)


def unpack_message(
    payload: bytes, *, allow_pickle: bool = False
) -> tuple[dict, dict[str, np.ndarray]]:
    """Decode a :func:`pack_message` payload into ``(header, arrays)``.

    Pickled (object-dtype) segments are refused unless ``allow_pickle``
    — receivers that only ever expect numeric tensors keep unpickling
    switched off entirely.
    """
    if len(payload) < 4:
        raise WireError("message truncated before header length")
    (head_len,) = struct.unpack(">I", payload[:4])
    if 4 + head_len > len(payload):
        raise WireError("message truncated inside JSON header")
    try:
        head = json.loads(payload[4 : 4 + head_len])
        header = head["header"]
        manifest = head["arrays"]
    except (ValueError, KeyError, TypeError) as exc:
        raise WireError(f"malformed message header: {exc}") from None
    if not isinstance(header, dict) or not isinstance(manifest, list):
        raise WireError("malformed message header: wrong container types")
    arrays: dict[str, np.ndarray] = {}
    offset = 4 + head_len
    for entry in manifest:
        try:
            name = entry["name"]
            encoding = entry["encoding"]
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed array manifest entry: {exc}") from None
        if offset + nbytes > len(payload):
            raise WireError(f"array {name!r} extends past the message end")
        blob = payload[offset : offset + nbytes]
        offset += nbytes
        if encoding == "raw":
            try:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(int(d) for d in entry["shape"])
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(f"bad raw-array manifest for {name!r}: {exc}") from None
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
            if dtype.hasobject or expected != nbytes:
                raise WireError(f"raw-array manifest for {name!r} is inconsistent")
            arrays[name] = np.frombuffer(blob, dtype=dtype).reshape(shape).copy()
        elif encoding == "pickle":
            if not allow_pickle:
                raise WireError(
                    f"array {name!r} is pickled; receiver forbids pickle"
                )
            try:
                arrays[name] = pickle.loads(blob)
            except Exception as exc:
                raise WireError(f"unpicklable array {name!r}: {exc}") from None
        else:
            raise WireError(f"unknown array encoding {encoding!r}")
    if offset != len(payload):
        raise WireError(f"{len(payload) - offset} trailing bytes after arrays")
    return header, arrays
