"""Tests for the shared baseline machinery (padding, featurisation)."""

import numpy as np
import pytest

from repro.baselines import (
    normalized_adjacency,
    one_hot_label_features,
    pad_graph_batch,
)
from repro.graph import Graph, cycle_graph, path_graph, star_graph


class TestOneHotFeatures:
    def test_shapes_and_values(self):
        g = Graph(3, [(0, 1)], [5, 7, 5])
        matrices, vocab = one_hot_label_features([g])
        assert vocab.size == 2
        assert matrices[0].sum() == 3
        assert np.allclose(matrices[0][0], matrices[0][2])

    def test_shared_vocabulary_across_graphs(self):
        g1 = Graph(2, [], [0, 1])
        g2 = Graph(2, [], [1, 2])
        matrices, vocab = one_hot_label_features([g1, g2])
        assert vocab.size == 3
        assert matrices[0].shape == (2, 3)

    def test_frozen_vocab_for_heldout(self):
        g1 = Graph(2, [], [0, 1])
        _, vocab = one_hot_label_features([g1])
        g2 = Graph(2, [], [1, 9])  # label 9 unseen
        matrices, _ = one_hot_label_features([g2], vocab)
        assert matrices[0][1].sum() == 0  # unknown label -> zero row


class TestPadding:
    def test_shapes(self):
        graphs = [path_graph(3), cycle_graph(5)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices)
        assert batch.features.shape == (2, 5, 1)
        assert batch.adjacency.shape == (2, 5, 5)
        assert batch.mask.shape == (2, 5)

    def test_mask_marks_real_vertices(self):
        graphs = [path_graph(2), path_graph(4)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices)
        assert batch.mask[0].tolist() == [1, 1, 0, 0]

    def test_padding_adjacency_zero(self):
        graphs = [path_graph(2), path_graph(4)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices)
        assert np.allclose(batch.adjacency[0, 2:, :], 0)
        assert np.allclose(batch.adjacency[0, :, 2:], 0)

    def test_truncates_to_w(self):
        graphs = [path_graph(6)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices, w=4)
        assert batch.features.shape[1] == 4

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            pad_graph_batch([path_graph(2)], [])


class TestNormalizedAdjacency:
    def test_rows_sum_to_one_for_real_vertices(self):
        graphs = [star_graph(4)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices)
        p = normalized_adjacency(batch.adjacency)
        assert np.allclose(p[0].sum(axis=1), 1.0)

    def test_padding_rows_only_self_loop(self):
        graphs = [path_graph(2), path_graph(4)]
        matrices, _ = one_hot_label_features(graphs)
        batch = pad_graph_batch(graphs, matrices)
        p = normalized_adjacency(batch.adjacency)
        # Padding rows: self-loop only -> normalised row is e_i; it cannot
        # leak into real vertices because columns to real vertices are 0.
        assert np.allclose(p[0, 2, :2], 0.0)
