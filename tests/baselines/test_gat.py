"""Tests for the GAT baseline (attention with hand-derived backward)."""

import numpy as np
import pytest

from repro.baselines import GATClassifier
from repro.baselines.gat import GATNetwork, _AttentionHead
from tests.baselines.test_networks import _check_params, _toy_batch

TOL = 5e-6


class TestAttentionHead:
    def test_attention_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        head = _AttentionHead(3, 4, rng)
        h = rng.normal(size=(2, 5, 3))
        attend = np.ones((2, 5, 5))
        head.forward(h, attend)
        _, _, alpha, _, _ = head._cache
        assert np.allclose(alpha.sum(axis=2), 1.0)

    def test_masked_entries_zero(self):
        rng = np.random.default_rng(1)
        head = _AttentionHead(3, 4, rng)
        h = rng.normal(size=(1, 4, 3))
        attend = np.eye(4)[None]  # self-attention only
        head.forward(h, attend)
        _, _, alpha, _, _ = head._cache
        assert np.allclose(alpha, np.eye(4)[None])

    def test_self_only_attention_is_linear(self):
        """With self-attention only, the head reduces to h W."""
        rng = np.random.default_rng(2)
        head = _AttentionHead(3, 4, rng)
        h = rng.normal(size=(1, 4, 3))
        out = head.forward(h, np.eye(4)[None])
        assert np.allclose(out, h @ head.weight.value)


class TestGATGradients:
    def test_exact(self):
        inputs, y = _toy_batch()
        net = GATNetwork(
            in_dim=4, hidden=3, num_layers=2, num_classes=2,
            heads=2, dropout=0.0, rng=0,
        )
        assert _check_params(net, inputs, y) < TOL

    def test_single_head_single_layer(self):
        inputs, y = _toy_batch()
        net = GATNetwork(
            in_dim=4, hidden=5, num_layers=1, num_classes=2,
            heads=1, dropout=0.0, rng=1,
        )
        assert _check_params(net, inputs, y) < TOL


class TestEstimator:
    def test_fit_predict(self, small_dataset):
        graphs, y = small_dataset
        model = GATClassifier(epochs=5, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)

    def test_learns(self, small_dataset):
        graphs, y = small_dataset
        model = GATClassifier(epochs=30, seed=0)
        model.fit(graphs, y)
        assert model.score(graphs, y) >= 0.7

    def test_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            GATNetwork(in_dim=2, hidden=2, num_layers=1, num_classes=2, heads=0)
