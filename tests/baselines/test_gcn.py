"""Tests for the GCN / GraphSAGE baseline."""

import numpy as np
import pytest

from repro.baselines import GCNClassifier
from repro.baselines.gcn import GCNNetwork, _gcn_propagation, _mean_propagation
from repro.features import WLVertexFeatures
from tests.baselines.test_networks import _check_params, _toy_batch

TOL = 1e-6


class TestPropagationMatrices:
    def test_gcn_symmetric(self):
        rng = np.random.default_rng(0)
        a = (rng.random((2, 5, 5)) < 0.4).astype(float)
        a = np.triu(a, 1)
        a = a + np.swapaxes(a, 1, 2)
        p = _gcn_propagation(a)
        assert np.allclose(p, np.swapaxes(p, 1, 2))

    def test_mean_rows_normalised(self):
        a = np.zeros((1, 3, 3))
        a[0, 0, 1] = a[0, 1, 0] = 1.0
        a[0, 0, 2] = a[0, 2, 0] = 1.0
        p = _mean_propagation(a)
        assert np.allclose(p[0, 0].sum(), 1.0)

    def test_mean_zero_degree_row_stays_zero(self):
        a = np.zeros((1, 2, 2))
        p = _mean_propagation(a)
        assert np.allclose(p, 0.0)


class TestGradients:
    @pytest.mark.parametrize("aggregator", ["gcn", "sage"])
    def test_exact(self, aggregator):
        inputs, y = _toy_batch()
        net = GCNNetwork(
            in_dim=4, hidden=5, num_layers=2, num_classes=2,
            aggregator=aggregator, dropout=0.0, rng=0,
        )
        assert _check_params(net, inputs, y) < TOL

    def test_rejects_bad_aggregator(self):
        with pytest.raises(ValueError, match="aggregator"):
            GCNNetwork(in_dim=2, hidden=2, num_layers=1, num_classes=2,
                       aggregator="max")


class TestEstimator:
    @pytest.mark.parametrize("aggregator", ["gcn", "sage"])
    def test_fit_predict(self, aggregator, small_dataset):
        graphs, y = small_dataset
        model = GCNClassifier(aggregator=aggregator, epochs=5, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)

    def test_learns(self, small_dataset):
        graphs, y = small_dataset
        model = GCNClassifier(epochs=30, seed=0)
        model.fit(graphs, y)
        assert model.score(graphs, y) >= 0.7

    def test_vertex_feature_map_inputs(self, small_dataset):
        graphs, y = small_dataset
        model = GCNClassifier(features=WLVertexFeatures(h=1), epochs=3, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)
