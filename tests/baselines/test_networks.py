"""Gradient checks and training smoke tests for the four GNN baselines."""

import numpy as np
import pytest

from repro.baselines import (
    DCNNClassifier,
    DGCNNClassifier,
    GINClassifier,
    PatchySanClassifier,
)
from repro.baselines.dcnn import DCNNNetwork, diffusion_features
from repro.baselines.dgcnn import DGCNNNetwork, SortPooling
from repro.baselines.gin import GINNetwork
from repro.features import WLVertexFeatures
from repro.graph import Graph, cycle_graph, path_graph, star_graph
from repro.nn import SoftmaxCrossEntropy

EPS = 1e-6
TOL = 1e-6


def _check_params(net, inputs, y):
    # Jitter biases away from zero: zero-initialised biases put the padded
    # all-zero rows exactly on the ReLU kink, where central finite
    # differences measure the average of the one-sided slopes instead of
    # the subgradient backprop uses.
    rng = np.random.default_rng(123)
    for p in net.parameters():
        if p.value.ndim == 1:
            p.value += rng.normal(0.0, 0.3, size=p.value.shape)
    lf = SoftmaxCrossEntropy()

    def loss():
        return lf.forward(net.forward(inputs, training=False), y)

    loss()
    net.zero_grad()
    net.backward(lf.backward())
    worst = 0.0
    for p in net.parameters():
        flat, grad = p.value.ravel(), p.grad.ravel()
        for i in range(0, flat.size, max(1, flat.size // 7)):
            orig = flat[i]
            flat[i] = orig + EPS
            up = loss()
            flat[i] = orig - EPS
            down = loss()
            flat[i] = orig
            worst = max(worst, abs((up - down) / (2 * EPS) - grad[i]))
    return worst


def _toy_batch(seed=0, b=3, w=6, d=4):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(b, w, d))
    a = (rng.random((b, w, w)) < 0.4).astype(float)
    a = np.triu(a, 1)
    a = a + np.swapaxes(a, 1, 2)
    mask = np.ones((b, w))
    mask[0, 4:] = 0
    x[0, 4:] = 0
    a[0, 4:, :] = 0
    a[0, :, 4:] = 0
    y = np.arange(b) % 2
    return (x, a, mask), y


class TestGINGradients:
    def test_exact(self):
        inputs, y = _toy_batch()
        net = GINNetwork(in_dim=4, hidden=5, num_layers=2, num_classes=2, dropout=0.0, rng=0)
        assert _check_params(net, inputs, y) < TOL

    def test_padding_invariance(self):
        """Extra padded vertices never change the logits."""
        (x, a, mask), _ = _toy_batch()
        net = GINNetwork(in_dim=4, hidden=5, num_layers=2, num_classes=2, dropout=0.0, rng=0)
        out = net.forward((x, a, mask))
        pad = 3
        x2 = np.concatenate([x, np.zeros((3, pad, 4))], axis=1)
        a2 = np.zeros((3, 9, 9))
        a2[:, :6, :6] = a
        mask2 = np.concatenate([mask, np.zeros((3, pad))], axis=1)
        out2 = net.forward((x2, a2, mask2))
        assert np.allclose(out, out2)


class TestDGCNNGradients:
    def test_exact(self):
        inputs, y = _toy_batch()
        net = DGCNNNetwork(
            in_dim=4, num_classes=2, conv_channels=(5, 1), sort_k=3,
            dropout=0.0, rng=0,
        )
        assert _check_params(net, inputs, y) < TOL


class TestSortPooling:
    def test_sorts_by_last_channel(self):
        z = np.zeros((1, 4, 2))
        z[0, :, 1] = [0.1, 0.9, 0.5, 0.3]
        mask = np.ones((1, 4))
        out = SortPooling(k=2).forward(z, mask)
        assert np.allclose(out[0, :, 1], [0.9, 0.5])

    def test_padding_sorts_last(self):
        z = np.zeros((1, 3, 1))
        z[0, :, 0] = [5.0, 9.0, 7.0]
        mask = np.array([[1.0, 0.0, 1.0]])  # vertex 1 is padding
        out = SortPooling(k=2).forward(z, mask)
        assert np.allclose(out[0, :, 0], [7.0, 5.0])

    def test_fewer_than_k_zero_padded(self):
        z = np.ones((1, 2, 1))
        mask = np.array([[1.0, 0.0]])
        out = SortPooling(k=3).forward(z, mask)
        assert np.allclose(out[0, 1:], 0.0)

    def test_backward_scatter(self):
        z = np.zeros((1, 3, 1))
        z[0, :, 0] = [1.0, 3.0, 2.0]
        mask = np.ones((1, 3))
        sp = SortPooling(k=2)
        sp.forward(z, mask)
        grad = np.array([[[10.0], [20.0]]])
        dz = sp.backward(grad)
        assert dz[0, 1, 0] == 10.0  # top vertex
        assert dz[0, 2, 0] == 20.0
        assert dz[0, 0, 0] == 0.0


class TestDCNN:
    def test_gradients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3, 5))
        y = np.array([0, 1, 0, 1])
        net = DCNNNetwork(hops=3, in_dim=5, num_classes=2, rng=0)
        assert _check_params(net, x, y) < TOL

    def test_diffusion_features_shape(self):
        g = cycle_graph(5)
        x = np.eye(5)
        f = diffusion_features(g, x, hops=3)
        assert f.shape == (3, 5)

    def test_diffusion_rows_are_distributions(self):
        g = star_graph(5)
        x = np.eye(5)
        f = diffusion_features(g, x, hops=2)
        assert np.allclose(f.sum(axis=1), 1.0)


class TestEstimators:
    @pytest.mark.parametrize(
        "cls", [GINClassifier, DGCNNClassifier, DCNNClassifier, PatchySanClassifier]
    )
    def test_fit_predict(self, cls, small_dataset):
        graphs, y = small_dataset
        model = cls(epochs=5, seed=0)
        model.fit(graphs, y)
        preds = model.predict(graphs)
        assert preds.shape == (len(graphs),)
        assert set(preds) <= {0, 1}

    @pytest.mark.parametrize(
        "cls", [GINClassifier, DGCNNClassifier, DCNNClassifier, PatchySanClassifier]
    )
    def test_vertex_feature_map_inputs(self, cls, small_dataset):
        """Table 4 mode: baselines fed DeepMap's vertex feature maps."""
        graphs, y = small_dataset
        model = cls(features=WLVertexFeatures(h=1), epochs=3, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)

    def test_gin_learns(self, small_dataset):
        graphs, y = small_dataset
        model = GINClassifier(epochs=25, seed=0)
        model.fit(graphs, y)
        assert model.score(graphs, y) >= 0.75

    def test_unfitted_predict_raises(self, small_dataset):
        graphs, _ = small_dataset
        with pytest.raises(RuntimeError):
            GINClassifier().predict(graphs)

    def test_validation_history(self, small_dataset):
        graphs, y = small_dataset
        model = GINClassifier(epochs=3, seed=0)
        model.fit(graphs[:8], y[:8], validation=(graphs[8:], y[8:]))
        assert len(model.history_.val_accuracy) == 3
