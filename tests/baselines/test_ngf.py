"""Tests for the Neural Graph Fingerprints baseline."""

import numpy as np
import pytest

from repro.baselines import NGFClassifier
from repro.baselines.ngf import NGFNetwork
from tests.baselines.test_networks import _check_params, _toy_batch

TOL = 1e-6


class TestGradients:
    def test_exact(self):
        inputs, y = _toy_batch()
        net = NGFNetwork(
            in_dim=4, hidden=5, fingerprint_dim=6, num_layers=2,
            num_classes=2, rng=0,
        )
        assert _check_params(net, inputs, y) < TOL

    def test_single_layer(self):
        inputs, y = _toy_batch()
        net = NGFNetwork(
            in_dim=4, hidden=3, fingerprint_dim=4, num_layers=1,
            num_classes=2, rng=1,
        )
        assert _check_params(net, inputs, y) < TOL


class TestFingerprintSemantics:
    def test_fingerprint_mass_equals_vertex_count(self):
        """Each real vertex writes a softmax distribution (mass 1) per
        layer, so the fingerprint sums to layers * n_vertices."""
        inputs, _ = _toy_batch()
        feats, adjacency, mask = inputs
        net = NGFNetwork(
            in_dim=4, hidden=5, fingerprint_dim=6, num_layers=2,
            num_classes=2, rng=0,
        )
        s = adjacency.copy()
        idx = np.arange(s.shape[1])
        s[:, idx, idx] += 1.0
        h = feats
        total = None
        for layer in net.layers:
            h, c = layer.forward(h, s, mask, training=False)
            total = c if total is None else total + c
        expected = 2 * mask.sum(axis=1)
        assert np.allclose(total.sum(axis=1), expected)

    def test_padding_writes_nothing(self):
        inputs, _ = _toy_batch()
        feats, adjacency, mask = inputs
        net = NGFNetwork(
            in_dim=4, hidden=5, fingerprint_dim=6, num_layers=1,
            num_classes=2, rng=0,
        )
        out1 = net.forward((feats, adjacency, mask))
        # Zero out the padded region harder; logits must be unchanged.
        feats2 = feats.copy()
        feats2[0, 4:] = 123.0  # padded vertices (mask 0) get garbage
        out2 = net.forward((feats2, adjacency, mask))
        # Garbage flows via aggregation only if adjacency connects it —
        # padded rows/cols are zero, so only self-loop terms change, and
        # those are masked out of the fingerprint.
        assert np.allclose(out1, out2)


class TestEstimator:
    def test_fit_predict(self, small_dataset):
        graphs, y = small_dataset
        model = NGFClassifier(epochs=5, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)

    def test_learns(self, small_dataset):
        graphs, y = small_dataset
        model = NGFClassifier(epochs=30, seed=0)
        model.fit(graphs, y)
        assert model.score(graphs, y) >= 0.7

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NGFNetwork(in_dim=2, hidden=0, fingerprint_dim=4, num_layers=1,
                       num_classes=2)
