"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph import Graph, erdos_renyi


@pytest.fixture
def triangle() -> Graph:
    """K3 with labels 0, 1, 2."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2])


@pytest.fixture
def paper_example_graph() -> Graph:
    """A small labeled graph resembling Fig. 2(b): labels {1, 2, 3, 4}."""
    #      1 - 4 - 3
    #          |   |
    #          3 - 2
    return Graph(
        5,
        [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)],
        [1, 4, 3, 3, 2],
    )


@pytest.fixture
def small_dataset():
    """12 connected labeled graphs in two structural classes."""
    rng = np.random.default_rng(42)
    graphs, labels = [], []
    for i in range(12):
        p = 0.25 if i % 2 == 0 else 0.6
        g = erdos_renyi(8, p, rng)
        from repro.graph import ensure_connected

        g = ensure_connected(g, rng)
        g = g.with_labels((np.arange(8) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    return graphs, np.array(labels)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

@st.composite
def random_graphs(draw, min_nodes: int = 1, max_nodes: int = 10, max_labels: int = 3):
    """Strategy producing small random labeled graphs."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    labels = draw(
        st.lists(
            st.integers(0, max_labels - 1), min_size=n, max_size=n
        )
    )
    return Graph(n, edges, labels)


@st.composite
def permutations_of(draw, n: int):
    """Strategy producing a permutation of 0..n-1."""
    perm = draw(st.permutations(list(range(n))))
    return list(perm)
