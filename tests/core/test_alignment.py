"""Tests for vertex-sequence alignment."""

import numpy as np
import pytest

from repro.core import ORDERINGS, centrality_scores, vertex_sequence
from repro.graph import Graph, cycle_graph, path_graph, star_graph


class TestCentralityScores:
    def test_eigenvector_default(self):
        g = star_graph(5)
        scores = centrality_scores(g, "eigenvector")
        assert np.argmax(scores) == 0

    def test_degree_ordering(self):
        g = star_graph(5)
        scores = centrality_scores(g, "degree")
        assert scores[0] == 1.0

    def test_canonical_is_permutation_score(self):
        g = path_graph(4)
        scores = centrality_scores(g, "canonical")
        assert sorted(scores.tolist()) == [1.0, 2.0, 3.0, 4.0]

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            centrality_scores(cycle_graph(4), "alphabetical")

    def test_all_orderings_listed(self):
        for ordering in ORDERINGS:
            centrality_scores(cycle_graph(4), ordering)


class TestVertexSequence:
    def test_star_center_first(self):
        g = star_graph(6)
        seq = vertex_sequence(g)
        assert seq[0] == 0

    def test_path_middle_first(self):
        g = path_graph(5)
        seq = vertex_sequence(g)
        assert seq[0] == 2

    def test_is_permutation(self):
        g = cycle_graph(7)
        assert sorted(vertex_sequence(g).tolist()) == list(range(7))

    def test_ties_broken_by_degree_then_label(self):
        # Two components: a triangle (degree 2) and an edge (degree 1);
        # eigenvector centrality concentrates on the triangle.
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (3, 4)], [1, 0, 1, 0, 0])
        seq = vertex_sequence(g).tolist()
        assert set(seq[:3]) == {0, 1, 2}
        # Within the triangle, equal centrality and degree: label ascending.
        assert seq[0] == 1  # label 0 before label 1

    def test_custom_scores(self):
        g = path_graph(3)
        seq = vertex_sequence(g, scores=np.array([0.1, 0.2, 0.9]))
        assert seq.tolist() == [2, 1, 0]

    def test_rejects_bad_scores_shape(self):
        with pytest.raises(ValueError):
            vertex_sequence(path_graph(3), scores=np.zeros(2))

    def test_deterministic(self):
        g = cycle_graph(8)
        assert np.array_equal(vertex_sequence(g), vertex_sequence(g))
