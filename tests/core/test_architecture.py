"""Tests for the Fig. 4 CNN architecture."""

import numpy as np
import pytest

from repro.core import DEFAULT_CHANNELS, build_deepmap_cnn
from repro.nn import Conv1D, Dense, Dropout, SumPool1D
from repro.nn.pooling import Flatten


class TestStructure:
    def test_layer_sequence(self):
        net = build_deepmap_cnn(m=7, r=3, num_classes=2)
        convs = [l for l in net.layers if isinstance(l, Conv1D)]
        assert len(convs) == 3
        assert convs[0].kernel_size == 3 and convs[0].stride == 3
        assert convs[1].kernel_size == 1 and convs[2].kernel_size == 1

    def test_channel_plan(self):
        net = build_deepmap_cnn(m=7, r=3, num_classes=2)
        convs = [l for l in net.layers if isinstance(l, Conv1D)]
        assert tuple(c.out_channels for c in convs) == DEFAULT_CHANNELS

    def test_convs_bias_free(self):
        net = build_deepmap_cnn(m=7, r=3, num_classes=2)
        convs = [l for l in net.layers if isinstance(l, Conv1D)]
        assert all(c.bias is None for c in convs)

    def test_has_dropout_and_sum_pool(self):
        net = build_deepmap_cnn(m=4, r=2, num_classes=3)
        assert any(isinstance(l, Dropout) for l in net.layers)
        assert any(isinstance(l, SumPool1D) for l in net.layers)

    def test_output_shape(self):
        net = build_deepmap_cnn(m=5, r=4, num_classes=3)
        x = np.random.default_rng(0).normal(size=(2, 5 * 4, 5))  # w=5
        assert net.forward(x).shape == (2, 3)


class TestDummyInvariance:
    def test_padding_does_not_change_logits(self):
        """Appending all-zero dummy slots leaves logits unchanged — the
        property Theorem 1 relies on (bias-free convs + sum readout)."""
        rng = np.random.default_rng(0)
        net = build_deepmap_cnn(m=6, r=2, num_classes=2, rng=1)
        x = rng.normal(size=(3, 4 * 2, 6))
        padded = np.concatenate([x, np.zeros((3, 6 * 2, 6))], axis=1)
        assert np.allclose(net.forward(x), net.forward(padded))

    def test_zero_input_gives_constant_logits(self):
        net = build_deepmap_cnn(m=4, r=2, num_classes=2, rng=0)
        out1 = net.forward(np.zeros((1, 8, 4)))
        out2 = net.forward(np.zeros((1, 16, 4)))
        assert np.allclose(out1, out2)


class TestConcatReadout:
    def test_concat_requires_w(self):
        with pytest.raises(ValueError, match="requires w"):
            build_deepmap_cnn(m=4, r=2, num_classes=2, readout="concat")

    def test_concat_forward(self):
        net = build_deepmap_cnn(m=4, r=2, num_classes=2, readout="concat", w=5)
        assert any(isinstance(l, Flatten) for l in net.layers)
        x = np.zeros((2, 10, 4))
        assert net.forward(x).shape == (2, 2)

    def test_unknown_readout_rejected(self):
        with pytest.raises(ValueError, match="unknown readout"):
            build_deepmap_cnn(m=4, r=2, num_classes=2, readout="max")


class TestTrainability:
    def test_gradient_flow(self):
        from repro.nn import SoftmaxCrossEntropy

        rng = np.random.default_rng(0)
        net = build_deepmap_cnn(m=4, r=2, num_classes=2, rng=0)
        x = rng.normal(size=(4, 6, 4))
        y = np.array([0, 1, 0, 1])
        lf = SoftmaxCrossEntropy()
        lf.forward(net.forward(x, training=True), y)
        net.zero_grad()
        net.backward(lf.backward())
        grads = [np.abs(p.grad).sum() for p in net.parameters()]
        assert all(g > 0 for g in grads)
