"""Gradient and training checks for both DeepMap readout variants."""

import numpy as np
import pytest

from repro.core import build_deepmap_cnn
from repro.nn import SoftmaxCrossEntropy


def _grad_check(net, x, y, tol=1e-7):
    lf = SoftmaxCrossEntropy()

    def loss():
        return lf.forward(net.forward(x, training=False), y)

    loss()
    net.zero_grad()
    net.backward(lf.backward())
    eps, worst = 1e-6, 0.0
    for p in net.parameters():
        flat, grad = p.value.ravel(), p.grad.ravel()
        for i in range(0, flat.size, max(1, flat.size // 9)):
            orig = flat[i]
            flat[i] = orig + eps
            up = loss()
            flat[i] = orig - eps
            down = loss()
            flat[i] = orig
            worst = max(worst, abs((up - down) / (2 * eps) - grad[i]))
    return worst


class TestReadoutGradients:
    def test_sum_readout_exact(self):
        rng = np.random.default_rng(0)
        net = build_deepmap_cnn(m=5, r=3, num_classes=3, rng=1)
        x = rng.normal(size=(4, 4 * 3, 5))
        y = np.array([0, 1, 2, 0])
        assert _grad_check(net, x, y) < 1e-7

    def test_concat_readout_exact(self):
        rng = np.random.default_rng(1)
        net = build_deepmap_cnn(m=5, r=3, num_classes=2, readout="concat", w=4, rng=2)
        x = rng.normal(size=(3, 4 * 3, 5))
        y = np.array([0, 1, 0])
        assert _grad_check(net, x, y) < 1e-7

    def test_custom_channels_and_dense(self):
        rng = np.random.default_rng(2)
        net = build_deepmap_cnn(
            m=4, r=2, num_classes=2, channels=(8, 4, 2), dense_units=16, rng=3
        )
        x = rng.normal(size=(2, 6, 4))
        y = np.array([0, 1])
        assert _grad_check(net, x, y) < 1e-7

    def test_parameter_count_independent_of_w(self):
        """Sum readout makes the network size-invariant: parameter count
        must not depend on the sequence length w."""
        a = build_deepmap_cnn(m=6, r=3, num_classes=2, rng=0)
        b = build_deepmap_cnn(m=6, r=3, num_classes=2, rng=0)
        xa = np.zeros((1, 5 * 3, 6))
        xb = np.zeros((1, 50 * 3, 6))
        a.forward(xa)
        b.forward(xb)
        assert a.num_parameters() == b.num_parameters()

    def test_concat_parameters_grow_with_w(self):
        a = build_deepmap_cnn(m=6, r=3, num_classes=2, readout="concat", w=5, rng=0)
        b = build_deepmap_cnn(m=6, r=3, num_classes=2, readout="concat", w=50, rng=0)
        assert b.num_parameters() > a.num_parameters()
