"""Property-based tests for the Algorithm 1 encoder."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeepMapEncoder
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices

from tests.conftest import random_graphs


def _encode(graphs, r):
    matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    encoder = DeepMapEncoder(r=r).fit(graphs)
    return encoder.encode(graphs, matrices), matrices


@given(
    graphs=st.lists(random_graphs(min_nodes=1, max_nodes=7), min_size=1, max_size=4),
    r=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_tensor_shape_and_finiteness(graphs, r):
    enc, _ = _encode(graphs, r)
    w = max(g.n for g in graphs)
    assert enc.tensors.shape == (len(graphs), w * r, enc.m)
    assert np.all(np.isfinite(enc.tensors))


@given(
    graphs=st.lists(random_graphs(min_nodes=1, max_nodes=7), min_size=1, max_size=4),
    r=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_mask_matches_graph_sizes(graphs, r):
    enc, _ = _encode(graphs, r)
    for gi, g in enumerate(graphs):
        assert enc.vertex_mask[gi].sum() == g.n


@given(
    graphs=st.lists(random_graphs(min_nodes=1, max_nodes=6), min_size=1, max_size=3),
    r=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_feature_mass_conserved(graphs, r):
    """Every tensor row is a copy of some vertex's feature row (or zero),
    so each graph's tensor total is bounded by r times its feature mass
    and every vertex appears at least once (in its own slot)."""
    enc, matrices = _encode(graphs, r)
    for gi, (g, mat) in enumerate(zip(graphs, matrices)):
        tensor_sum = enc.tensors[gi].sum()
        mass = mat.sum()
        assert tensor_sum <= r * mass + 1e-9
        if r == 1:
            # With r=1 every slot holds exactly its own vertex.
            assert np.isclose(tensor_sum, mass)


@given(
    graphs=st.lists(random_graphs(min_nodes=2, max_nodes=6), min_size=2, max_size=3),
)
@settings(max_examples=15, deadline=None)
def test_encoding_independent_of_companions(graphs):
    """A graph's slice depends only on itself (given fixed w and vocab)."""
    matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    w = max(g.n for g in graphs)
    encoder = DeepMapEncoder(r=2, w=w)
    full = encoder.encode(graphs, matrices)
    solo = encoder.encode(graphs[:1], matrices[:1])
    assert np.allclose(full.tensors[0], solo.tensors[0])
