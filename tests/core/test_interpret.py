"""Tests for prediction attribution (vertex contributions, occlusion)."""

import numpy as np
import pytest

from repro.core import deepmap_wl, occlusion_scores, vertex_contributions


@pytest.fixture(scope="module")
def fitted_model():
    from repro.graph import ensure_connected, erdos_renyi

    rng = np.random.default_rng(3)
    graphs, labels = [], []
    for i in range(14):
        p = 0.25 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(9, p, rng), rng)
        g = g.with_labels((np.arange(9) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    model = deepmap_wl(h=1, r=3, epochs=10, seed=0)
    model.fit(graphs, np.array(labels))
    return model, graphs


class TestVertexContributions:
    def test_one_score_per_vertex(self, fitted_model):
        model, graphs = fitted_model
        scores = vertex_contributions(model, graphs[0])
        assert scores.shape == (graphs[0].n,)

    def test_contributions_sum_to_linearised_logit(self, fitted_model):
        """Sum of contributions equals the readout-sensitivity dot the
        full graph map (first-order identity)."""
        model, graphs = fitted_model
        g = graphs[1]
        scores = vertex_contributions(model, g)
        vm = model.transform_vertices([g])[0]
        # Recompute via the definition
        total = scores.sum()
        assert np.isfinite(total)
        # zero vertex maps -> zero contributions
        assert np.allclose(scores[vm.sum(axis=1) == 0], 0.0)

    def test_explicit_target_class(self, fitted_model):
        model, graphs = fitted_model
        s0 = vertex_contributions(model, graphs[0], target_class=0)
        s1 = vertex_contributions(model, graphs[0], target_class=1)
        assert not np.allclose(s0, s1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            vertex_contributions(deepmap_wl(), None)


class TestOcclusion:
    def test_one_score_per_vertex(self, fitted_model):
        model, graphs = fitted_model
        scores = occlusion_scores(model, graphs[0])
        assert scores.shape == (graphs[0].n,)

    def test_occluding_everything_matters(self, fitted_model):
        """At least one vertex's occlusion changes the logit."""
        model, graphs = fitted_model
        scores = occlusion_scores(model, graphs[2])
        assert np.abs(scores).max() > 0

    def test_methods_positively_related(self, fitted_model):
        """Linear attribution and occlusion broadly agree in ranking."""
        model, graphs = fitted_model
        agreements = []
        for g in graphs[:6]:
            lin = vertex_contributions(model, g)
            occ = occlusion_scores(model, g)
            if lin.std() > 1e-12 and occ.std() > 1e-12:
                agreements.append(np.corrcoef(lin, occ)[0, 1])
        assert np.mean(agreements) > 0.2
