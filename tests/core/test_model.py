"""Tests for the DeepMap estimator."""

import numpy as np
import pytest

from repro.core import DeepMapClassifier, deepmap_gk, deepmap_sp, deepmap_wl
from repro.features import ShortestPathVertexFeatures


class TestFitPredict:
    def test_learns_structural_classes(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_wl(h=2, r=3, epochs=20, seed=0)
        model.fit(graphs, y)
        assert model.score(graphs, y) >= 0.75

    def test_predict_returns_original_labels(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_sp(r=3, epochs=5, seed=0)
        model.fit(graphs, y + 10)  # classes 10 and 11
        assert set(model.predict(graphs)) <= {10, 11}

    def test_predict_proba_rows_sum_one(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=2, epochs=3, seed=0)
        model.fit(graphs, y)
        proba = model.predict_proba(graphs)
        assert proba.shape == (len(graphs), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_validation_history(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=2, epochs=4, seed=0)
        model.fit(graphs[:8], y[:8], validation=(graphs[8:], y[8:]))
        assert len(model.history_.val_accuracy) == 4

    def test_transform_is_low_dimensional(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=2, epochs=3, seed=0)
        model.fit(graphs, y)
        emb = model.transform(graphs)
        assert emb.shape == (len(graphs), 8)  # paper: 8 channels after conv3

    def test_deterministic_given_seed(self, small_dataset):
        graphs, y = small_dataset
        m1 = deepmap_wl(h=1, r=2, epochs=3, seed=5).fit(graphs, y)
        m2 = deepmap_wl(h=1, r=2, epochs=3, seed=5).fit(graphs, y)
        assert np.allclose(m1.history_.loss, m2.history_.loss)


class TestVariants:
    def test_gk_variant_runs(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_gk(k=3, samples=5, r=3, epochs=3, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)

    def test_named_feature_maps(self):
        assert DeepMapClassifier("wl").extractor.name == "wl"
        assert DeepMapClassifier("sp").extractor.name == "sp"
        assert DeepMapClassifier("gk").extractor.name == "gk"

    def test_custom_extractor(self):
        model = DeepMapClassifier(ShortestPathVertexFeatures(max_distance=2))
        assert model.extractor.max_distance == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown feature map"):
            DeepMapClassifier("magic")


class TestMaxFeatures:
    def test_caps_vocabulary(self, small_dataset):
        graphs, y = small_dataset
        model = DeepMapClassifier("wl", r=2, epochs=2, max_features=5, seed=0)
        model.fit(graphs, y)
        assert model.vocabulary_.size == 5

    def test_no_cap_keeps_everything(self, small_dataset):
        graphs, y = small_dataset
        full = DeepMapClassifier("wl", r=2, epochs=2, seed=0).fit(graphs, y)
        capped = DeepMapClassifier(
            "wl", r=2, epochs=2, max_features=10**6, seed=0
        ).fit(graphs, y)
        assert capped.vocabulary_.size == full.vocabulary_.size

    def test_keeps_most_frequent(self, small_dataset):
        graphs, y = small_dataset
        full = DeepMapClassifier("wl", r=2, epochs=1, seed=0).fit(graphs, y)
        capped = DeepMapClassifier(
            "wl", r=2, epochs=1, max_features=3, seed=0
        ).fit(graphs, y)
        # Capped keys are a subset of the full vocabulary.
        assert set(capped.vocabulary_.keys()) <= set(full.vocabulary_.keys())

    def test_still_predicts(self, small_dataset):
        graphs, y = small_dataset
        model = DeepMapClassifier("sp", r=3, epochs=5, max_features=8, seed=0)
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)


class TestErrors:
    def test_unfitted_predict(self, small_dataset):
        graphs, _ = small_dataset
        with pytest.raises(RuntimeError, match="not fitted"):
            deepmap_wl().predict(graphs)

    def test_label_count_mismatch(self, small_dataset):
        graphs, y = small_dataset
        with pytest.raises(ValueError):
            deepmap_wl(epochs=1).fit(graphs, y[:-1])

    def test_concat_readout_variant(self, small_dataset):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=2, epochs=2, seed=0, readout="concat")
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)


class TestChunkedInference:
    """``chunk_size`` bounds memory without changing a single bit."""

    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.graph import ensure_connected, erdos_renyi

        rng = np.random.default_rng(42)
        graphs, labels = [], []
        for i in range(12):
            g = erdos_renyi(8, 0.25 if i % 2 == 0 else 0.6, rng)
            g = ensure_connected(g, rng)
            graphs.append(g.with_labels((np.arange(8) % 3).tolist()))
            labels.append(i % 2)
        y = np.array(labels)
        return graphs, deepmap_wl(h=1, r=3, epochs=3, seed=0).fit(graphs, y)

    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 100])
    def test_predict_proba_chunked_bitwise_equal(self, fitted, chunk_size):
        graphs, model = fitted
        full = model.predict_proba(graphs)
        chunked = model.predict_proba(graphs, chunk_size=chunk_size)
        np.testing.assert_array_equal(full, chunked)

    @pytest.mark.parametrize("chunk_size", [1, 4])
    def test_predict_chunked_bitwise_equal(self, fitted, chunk_size):
        graphs, model = fitted
        np.testing.assert_array_equal(
            model.predict(graphs), model.predict(graphs, chunk_size=chunk_size)
        )

    def test_subset_inference_bitwise_equal(self, fitted):
        """Batch-composition invariance: scoring a subset alone must equal
        the corresponding rows of the full-batch result (this is what lets
        the serving layer fuse concurrent requests)."""
        graphs, model = fitted
        full = model.predict_proba(graphs)
        np.testing.assert_array_equal(full[:3], model.predict_proba(graphs[:3]))
        np.testing.assert_array_equal(full[7:], model.predict_proba(graphs[7:]))

    def test_bad_chunk_size_rejected(self, fitted):
        graphs, model = fitted
        with pytest.raises(ValueError, match="chunk_size"):
            model.predict_proba(graphs, chunk_size=0)
