"""Tests for model save/load."""

import numpy as np
import pytest

from repro.core import deepmap_wl
from repro.core.persistence import load_model, save_model


class TestPersistence:
    def test_roundtrip_predictions_identical(self, small_dataset, tmp_path):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=3, epochs=3, seed=0).fit(graphs, y)
        path = tmp_path / "model.pkl"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(model.predict(graphs), restored.predict(graphs))
        assert np.allclose(model.transform(graphs), restored.transform(graphs))

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(deepmap_wl(), tmp_path / "x.pkl")

    def test_wrong_version_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 999, "model": None}, fh)
        with pytest.raises(ValueError, match="version"):
            load_model(path)

    def test_wrong_payload_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 1, "model": 42}, fh)
        with pytest.raises(ValueError, match="DeepMapClassifier"):
            load_model(path)
