"""Tests for model save/load (format v2: checksummed envelope)."""

import pickle

import numpy as np
import pytest

from repro.core import deepmap_gk, deepmap_sp, deepmap_wl
from repro.core.persistence import (
    ModelPersistenceError,
    load_model,
    save_model,
)

FACTORIES = {
    "wl": lambda: deepmap_wl(h=1, r=3, epochs=3, seed=0),
    "sp": lambda: deepmap_sp(r=3, epochs=3, seed=0),
    "gk": lambda: deepmap_gk(k=4, samples=6, r=3, epochs=3, seed=0),
}


@pytest.fixture(scope="module")
def fitted_models(small_dataset_module):
    graphs, y = small_dataset_module
    return {name: make().fit(graphs, y) for name, make in FACTORIES.items()}


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.graph import ensure_connected, erdos_renyi

    rng = np.random.default_rng(42)
    graphs, labels = [], []
    for i in range(12):
        g = erdos_renyi(8, 0.25 if i % 2 == 0 else 0.6, rng)
        g = ensure_connected(g, rng)
        graphs.append(g.with_labels((np.arange(8) % 3).tolist()))
        labels.append(i % 2)
    return graphs, np.array(labels)


class TestPersistence:
    def test_roundtrip_predictions_identical(self, small_dataset, tmp_path):
        graphs, y = small_dataset
        model = deepmap_wl(h=1, r=3, epochs=3, seed=0).fit(graphs, y)
        path = tmp_path / "model.pkl"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(model.predict(graphs), restored.predict(graphs))
        assert np.allclose(model.transform(graphs), restored.transform(graphs))

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_roundtrip_proba_bitwise_per_extractor(
        self, name, fitted_models, small_dataset_module, tmp_path
    ):
        """Every extractor family survives save/load with *bitwise* equal
        probabilities — the property the serving registry relies on."""
        graphs, _ = small_dataset_module
        model = fitted_models[name]
        path = tmp_path / f"{name}.pkl"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_array_equal(
            model.predict_proba(graphs), restored.predict_proba(graphs)
        )

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(deepmap_wl(), tmp_path / "x.pkl")


class TestEnvelope:
    def test_saved_file_is_a_v2_checksummed_envelope(
        self, fitted_models, tmp_path
    ):
        path = tmp_path / "model.pkl"
        save_model(fitted_models["wl"], path)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        assert payload["format_version"] == 2
        assert isinstance(payload["model_bytes"], bytes)
        assert isinstance(payload["checksum"], str) and payload["checksum"]

    def test_legacy_v1_file_still_loads(self, fitted_models, tmp_path):
        path = tmp_path / "v1.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 1, "model": fitted_models["wl"]}, fh)
        restored = load_model(path)
        assert restored.classes_ is not None

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 999, "model": None}, fh)
        with pytest.raises(ModelPersistenceError, match="version"):
            load_model(path)

    def test_future_version_error_names_supported_range(self, tmp_path):
        path = tmp_path / "future.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 3, "model_bytes": b""}, fh)
        with pytest.raises(ModelPersistenceError, match="versions 1..2"):
            load_model(path)

    def test_wrong_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 1, "model": 42}, fh)
        with pytest.raises(ValueError, match="DeepMapClassifier"):
            load_model(path)

    def test_v2_non_model_payload_rejected(self, tmp_path):
        path = tmp_path / "bad2.pkl"
        blob = pickle.dumps([1, 2, 3])
        from repro.resilience.checkpoint import blake2b_hexdigest

        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "format_version": 2,
                    "checksum": blake2b_hexdigest([blob]),
                    "model_bytes": blob,
                },
                fh,
            )
        with pytest.raises(ModelPersistenceError, match="DeepMapClassifier"):
            load_model(path)


class TestCorruption:
    @pytest.fixture
    def saved(self, fitted_models, tmp_path):
        path = tmp_path / "model.pkl"
        save_model(fitted_models["wl"], path)
        return path

    def test_flipped_payload_byte_fails_checksum(self, saved, tmp_path):
        with open(saved, "rb") as fh:
            payload = pickle.load(fh)
        blob = bytearray(payload["model_bytes"])
        blob[len(blob) // 2] ^= 0xFF
        payload["model_bytes"] = bytes(blob)
        corrupt = tmp_path / "corrupt.pkl"
        with open(corrupt, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(ModelPersistenceError, match="checksum mismatch"):
            load_model(corrupt)

    def test_truncated_file_rejected(self, saved, tmp_path):
        data = saved.read_bytes()
        truncated = tmp_path / "truncated.pkl"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelPersistenceError):
            load_model(truncated)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"\x00\x01not a pickle at all")
        with pytest.raises(ModelPersistenceError):
            load_model(path)

    def test_non_dict_pickle_rejected(self, tmp_path):
        path = tmp_path / "list.pkl"
        with open(path, "wb") as fh:
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(ModelPersistenceError, match="not a DeepMap model"):
            load_model(path)
