"""Tests for the Algorithm 1 encoding pipeline, including Theorem 1."""

import numpy as np
import pytest

from repro.core import DeepMapEncoder
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices
from repro.graph import Graph, cycle_graph, path_graph, star_graph


def _encode(graphs, r=3, ordering="eigenvector"):
    matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    encoder = DeepMapEncoder(r=r, ordering=ordering).fit(graphs)
    return encoder.encode(graphs, matrices), matrices


class TestShapes:
    def test_tensor_shape(self):
        graphs = [cycle_graph(5), star_graph(7), path_graph(3)]
        enc, _ = _encode(graphs, r=3)
        assert enc.w == 7
        assert enc.tensors.shape == (3, 7 * 3, enc.m)

    def test_vertex_mask(self):
        graphs = [path_graph(3), path_graph(5)]
        enc, _ = _encode(graphs, r=2)
        assert enc.vertex_mask[0].sum() == 3
        assert enc.vertex_mask[1].sum() == 5

    def test_explicit_w(self):
        graphs = [path_graph(3)]
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        enc = DeepMapEncoder(r=2, w=10).encode(graphs, matrices)
        assert enc.tensors.shape[1] == 20

    def test_larger_graph_truncated_to_w(self):
        train = [path_graph(4)]
        matrices, vocab = extract_vertex_feature_matrices(train, WLVertexFeatures(h=1))
        encoder = DeepMapEncoder(r=2).fit(train)
        big = [path_graph(9)]
        counts = WLVertexFeatures(h=1).extract(big)
        big_matrices = [vocab.vectorize_rows(counts[0])]
        enc = encoder.encode(big, big_matrices)
        assert enc.tensors.shape[1] == 4 * 2


class TestDummyZeroProperty:
    def test_padding_rows_zero(self):
        graphs = [path_graph(2), path_graph(6)]
        enc, _ = _encode(graphs, r=3)
        # Graph 0 has 2 vertices; slots 2..5 must be all-zero.
        padding = enc.tensors[0, 2 * 3 :, :]
        assert np.allclose(padding, 0.0)

    def test_unfilled_field_rows_zero(self):
        graphs = [path_graph(2)]
        enc, _ = _encode(graphs, r=4)
        # Each vertex's field has 2 real slots and 2 dummy rows.
        slot0 = enc.tensors[0, :4, :]
        assert np.allclose(slot0[2:], 0.0)
        assert not np.allclose(slot0[:2], 0.0)


class TestTheorem1:
    """Isomorphic graphs produce identical CNN input tensors (hence
    identical deep feature maps after the summation layer)."""

    @pytest.mark.parametrize("ordering", ["eigenvector", "degree"])
    def test_isomorphic_tensors_equal(self, ordering):
        # Star with labeled arms: distinct centralities break all ties.
        g = Graph(
            6,
            [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)],
            [0, 1, 1, 2, 0, 1],
        )
        perm = [5, 3, 1, 0, 2, 4]
        h = g.relabel_vertices(perm)
        matrices, _ = extract_vertex_feature_matrices([g, h], WLVertexFeatures(h=2))
        enc = DeepMapEncoder(r=3, ordering=ordering).fit([g, h]).encode(
            [g, h], matrices
        )
        assert np.allclose(enc.tensors[0], enc.tensors[1])

    def test_cycle_summed_maps_equal(self):
        """Even with ties (vertex-transitive cycle), the *summed* deep map
        input is permutation invariant."""
        g = cycle_graph(6).with_labels([0, 1, 0, 1, 0, 1])
        h = g.relabel_vertices([2, 3, 4, 5, 0, 1])
        matrices, _ = extract_vertex_feature_matrices([g, h], WLVertexFeatures(h=2))
        enc = DeepMapEncoder(r=3).fit([g, h]).encode([g, h], matrices)
        # Sum over positions = readout input after identical convolutions.
        assert np.allclose(
            enc.tensors[0].sum(axis=0), enc.tensors[1].sum(axis=0)
        )


class TestValidation:
    def test_rejects_misaligned_inputs(self):
        graphs = [path_graph(3)]
        with pytest.raises(ValueError, match="align"):
            DeepMapEncoder(r=2).fit(graphs).encode(graphs, [])

    def test_rejects_wrong_matrix_shape(self):
        graphs = [path_graph(3)]
        with pytest.raises(ValueError, match="shape"):
            DeepMapEncoder(r=2).fit(graphs).encode(graphs, [np.zeros((2, 4))])

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            DeepMapEncoder(r=2).fit([])

    def test_rejects_bad_r(self):
        with pytest.raises(ValueError):
            DeepMapEncoder(r=0)


class TestInstrumentation:
    """Encoding under observability: same tensors, stage spans recorded."""

    def test_output_identical_enabled_vs_disabled(self):
        from repro import obs

        graphs = [cycle_graph(5), star_graph(6)]
        enc_off, _ = _encode(graphs, r=3)
        obs.reset()
        obs.enable()
        try:
            enc_on, _ = _encode(graphs, r=3)
        finally:
            obs.disable()
            obs.reset()
        np.testing.assert_array_equal(enc_off.tensors, enc_on.tensors)
        np.testing.assert_array_equal(enc_off.vertex_mask, enc_on.vertex_mask)

    def test_stage_spans_recorded(self):
        from repro import obs

        graphs = [cycle_graph(5), path_graph(4)]
        obs.reset()
        obs.enable()
        try:
            _encode(graphs, r=2)
            paths = [p for p, _ in obs.get_tracer().rows()]
            encoded_total = obs.get_metrics().snapshot()[
                "graphs_encoded_total"
            ]["value"]
        finally:
            obs.disable()
            obs.reset()
        for expected in (
            "feature_map",
            "feature_map/extract",
            "encode",
            "encode/alignment",
            "encode/receptive_field",
            "encode/assemble",
        ):
            assert expected in paths, f"missing span {expected!r}"
        assert encoded_total == 2
