"""Tests for BFS receptive-field construction (Algorithm 1 lines 15-19)."""

import numpy as np
import pytest

from repro.core import DUMMY, all_receptive_fields, receptive_field
from repro.core.alignment import centrality_scores
from repro.graph import Graph, cycle_graph, path_graph, star_graph


def _fields(g, r):
    scores = centrality_scores(g)
    return all_receptive_fields(g, r, scores), scores


class TestFieldSize:
    def test_exactly_r_slots(self):
        g = cycle_graph(8)
        fields, _ = _fields(g, 4)
        assert fields.shape == (8, 4)

    def test_r_one_is_center_only(self):
        g = cycle_graph(5)
        scores = centrality_scores(g)
        for v in range(5):
            field = receptive_field(g, v, 1, scores)
            assert field.tolist() == [v]

    def test_small_graph_padded_with_dummy(self):
        g = path_graph(3)
        scores = centrality_scores(g)
        field = receptive_field(g, 0, 5, scores)
        assert (field == DUMMY).sum() == 2

    def test_isolated_vertex_mostly_dummy(self):
        g = Graph(4, [(1, 2)])
        scores = centrality_scores(g)
        field = receptive_field(g, 0, 3, scores)
        assert field[0] == 0
        assert (field == DUMMY).sum() == 2


class TestFieldMembership:
    def test_contains_center(self):
        g = cycle_graph(6)
        fields, _ = _fields(g, 3)
        for v in range(6):
            assert v in fields[v]

    def test_prefers_one_hop(self):
        g = star_graph(6)
        scores = centrality_scores(g)
        field = receptive_field(g, 1, 3, scores)  # a leaf
        # leaf's one-hop = center; rest comes from two-hop leaves
        assert 0 in field

    def test_top_centrality_one_hop_selected(self):
        # Center 0 of a star with an extra pendant chain: one-hop
        # neighbors exceed r-1, keep the highest-centrality ones.
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)])
        scores = centrality_scores(g)
        field = receptive_field(g, 0, 3, scores)
        assert 0 in field
        # vertex 4 has highest centrality among leaves (extra neighbor 5)
        assert 4 in field

    def test_expands_hops_when_needed(self):
        g = path_graph(6)
        scores = centrality_scores(g)
        field = receptive_field(g, 0, 4, scores)
        # From the end of a path: needs vertices at distance 1, 2, 3.
        assert set(field.tolist()) == {0, 1, 2, 3}


class TestFieldOrdering:
    def test_sorted_by_descending_score(self):
        g = star_graph(8)
        scores = centrality_scores(g)
        field = receptive_field(g, 3, 4, scores)
        real = field[field != DUMMY]
        vals = scores[real]
        assert np.all(np.diff(vals) <= 1e-12)

    def test_dummies_trail(self):
        g = path_graph(2)
        scores = centrality_scores(g)
        field = receptive_field(g, 0, 4, scores)
        real_positions = np.nonzero(field != DUMMY)[0]
        assert real_positions.tolist() == [0, 1]


class TestValidation:
    def test_rejects_bad_vertex(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            receptive_field(g, 9, 3, centrality_scores(g))

    def test_rejects_bad_r(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            receptive_field(g, 0, 0, centrality_scores(g))
