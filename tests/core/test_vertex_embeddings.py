"""Tests for the deep vertex feature maps (the Section 7 extension)."""

import numpy as np
import pytest

from repro.core import deepmap_wl


@pytest.fixture(scope="module")
def fitted(request):
    import numpy as np

    from repro.graph import ensure_connected, erdos_renyi

    rng = np.random.default_rng(42)
    graphs, labels = [], []
    for i in range(12):
        p = 0.25 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(8, p, rng), rng)
        g = g.with_labels((np.arange(8) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    model = deepmap_wl(h=1, r=3, epochs=3, seed=0)
    model.fit(graphs, np.array(labels))
    return model, graphs


class TestVertexEmbeddings:
    def test_one_row_per_vertex(self, fitted):
        model, graphs = fitted
        embs = model.transform_vertices(graphs[:4])
        for g, e in zip(graphs[:4], embs):
            assert e.shape == (g.n, 8)

    def test_sum_equals_graph_embedding(self, fitted):
        """Equation 7 at the deep level: the graph's deep feature map is
        the sum of its vertices' deep feature maps."""
        model, graphs = fitted
        vertex_embs = model.transform_vertices(graphs[:5])
        graph_embs = model.transform(graphs[:5])
        for ve, ge in zip(vertex_embs, graph_embs):
            assert np.allclose(ve.sum(axis=0), ge)

    def test_non_negative_after_relu(self, fitted):
        model, graphs = fitted
        for e in model.transform_vertices(graphs[:3]):
            assert np.all(e >= 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            deepmap_wl().transform_vertices([])

    def test_isomorphic_vertex_embeddings_match(self, fitted):
        """Vertex embeddings travel with the vertices under relabeling.

        Uses a graph whose eigenvector centralities are all distinct —
        with centrality ties the id-based tie-break is (documented as)
        not isomorphism-invariant at the vertex level, though the summed
        graph map remains invariant.
        """
        from repro.graph import Graph

        model, _ = fitted
        g = Graph(
            6,
            [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)],
            [0, 1, 1, 2, 0, 1],
        )
        perm = np.array([5, 3, 1, 0, 2, 4])
        h = g.relabel_vertices(perm.tolist())
        emb_g = model.transform_vertices([g])[0]
        emb_h = model.transform_vertices([h])[0]
        # vertex v of g becomes perm[v] of h
        assert np.allclose(emb_g, emb_h[perm], atol=1e-8)
