"""Tests for the end-to-end vertex classifier (Section 7 extension)."""

import numpy as np
import pytest

from repro.core import DeepMapVertexClassifier
from repro.features import ShortestPathVertexFeatures
from repro.graph import ensure_connected, erdos_renyi


@pytest.fixture(scope="module")
def vertex_task():
    """Graphs + per-vertex targets: predict whether degree >= 3."""
    rng = np.random.default_rng(5)
    graphs, targets = [], []
    for _ in range(16):
        g = ensure_connected(erdos_renyi(10, 0.35, rng), rng)
        g = g.with_labels((np.arange(10) % 3).tolist())
        graphs.append(g)
        targets.append((g.degrees() >= 3).astype(int))
    return graphs, targets


class TestFitPredict:
    def test_learns_degree_task(self, vertex_task):
        from repro.features import WLVertexFeatures

        graphs, targets = vertex_task
        # Shallow WL features (h=1): deep hashes are near-unique per
        # vertex and do not generalise from 12 small training graphs.
        model = DeepMapVertexClassifier(
            WLVertexFeatures(h=1), r=3, epochs=30, seed=0
        )
        model.fit(graphs[:12], targets[:12])
        train_acc = model.score(graphs[:12], targets[:12])
        test_acc = model.score(graphs[12:], targets[12:])
        flat = np.concatenate(targets[12:])
        majority = max(flat.mean(), 1 - flat.mean())
        assert train_acc > 0.8
        assert test_acc > majority - 0.05

    def test_prediction_shapes(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(r=2, epochs=2, seed=0)
        model.fit(graphs[:6], targets[:6])
        preds = model.predict(graphs[6:9])
        assert [p.shape for p in preds] == [(g.n,) for g in graphs[6:9]]

    def test_proba_rows_sum_one(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(r=2, epochs=2, seed=0)
        model.fit(graphs[:6], targets[:6])
        probs = model.predict_proba(graphs[:2])
        for p in probs:
            assert np.allclose(p.sum(axis=1), 1.0)

    def test_original_class_labels_returned(self, vertex_task):
        graphs, targets = vertex_task
        shifted = [t + 7 for t in targets]  # classes 7, 8
        model = DeepMapVertexClassifier(r=2, epochs=2, seed=0)
        model.fit(graphs[:6], shifted[:6])
        preds = model.predict(graphs[:2])
        assert set(np.concatenate(preds).tolist()) <= {7, 8}

    def test_loss_history_recorded(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(r=2, epochs=4, seed=0)
        model.fit(graphs[:6], targets[:6])
        assert len(model.loss_history_) == 4

    def test_custom_extractor(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(
            ShortestPathVertexFeatures(), r=2, epochs=2, seed=0
        )
        model.fit(graphs[:6], targets[:6])
        assert model.predict(graphs[:1])[0].shape == (graphs[0].n,)


class TestValidation:
    def test_misaligned_targets(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(epochs=1)
        with pytest.raises(ValueError, match="align"):
            model.fit(graphs[:3], targets[:2])

    def test_wrong_target_length(self, vertex_task):
        graphs, targets = vertex_task
        model = DeepMapVertexClassifier(epochs=1)
        with pytest.raises(ValueError, match="mismatches"):
            model.fit(graphs[:1], [np.zeros(3, dtype=int)])

    def test_unfitted_predict(self, vertex_task):
        graphs, _ = vertex_task
        with pytest.raises(RuntimeError):
            DeepMapVertexClassifier().predict(graphs[:1])

    def test_unknown_shortcut_rejected(self):
        with pytest.raises(ValueError, match="wl"):
            DeepMapVertexClassifier("sp")
