"""Tests for the dataset container."""

import numpy as np
import pytest

from repro.datasets import GraphDataset
from repro.graph import cycle_graph, path_graph


@pytest.fixture
def ds():
    return GraphDataset(
        name="toy",
        graphs=[cycle_graph(4), path_graph(3), cycle_graph(5)],
        y=np.array([0, 1, 0]),
    )


class TestGraphDataset:
    def test_len(self, ds):
        assert len(ds) == 3

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            GraphDataset(name="x", graphs=[cycle_graph(3)], y=np.array([0, 1]))

    def test_statistics(self, ds):
        s = ds.statistics()
        assert s.size == 3
        assert s.num_classes == 2
        assert np.isclose(s.avg_nodes, 4.0)
        assert np.isclose(s.avg_edges, (4 + 2 + 5) / 3)
        assert s.num_labels == 1

    def test_statistics_row_format(self, ds):
        row = ds.statistics().row()
        assert "toy" in row and "3" in row

    def test_subset(self, ds):
        sub = ds.subset([0, 2])
        assert len(sub) == 2
        assert sub.y.tolist() == [0, 0]
        assert sub.name == "toy"

    def test_subset_preserves_graphs(self, ds):
        sub = ds.subset([1])
        assert sub.graphs[0] == ds.graphs[1]
