"""Property-based tests over the dataset generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_dataset
from repro.graph import connected_components

SMALL_DATASETS = ("PTC_MR", "KKI", "IMDB-BINARY", "ENZYMES")


@given(
    name=st.sampled_from(SMALL_DATASETS),
    seed=st.integers(0, 50),
)
@settings(max_examples=12, deadline=None)
def test_generation_is_seed_deterministic(name, seed):
    a = make_dataset(name, scale=0.02, seed=seed)
    b = make_dataset(name, scale=0.02, seed=seed)
    assert all(g1 == g2 for g1, g2 in zip(a.graphs, b.graphs))


@given(
    name=st.sampled_from(SMALL_DATASETS),
    seed=st.integers(0, 20),
)
@settings(max_examples=10, deadline=None)
def test_classes_roughly_balanced(name, seed):
    ds = make_dataset(name, scale=0.02, seed=seed)
    counts = np.bincount(ds.y)
    assert counts.min() >= counts.max() - 1  # round-robin balance


@given(seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_molecules_connected_and_labeled(seed):
    ds = make_dataset("PTC_MR", scale=0.02, seed=seed)
    for g in ds.graphs:
        assert len(connected_components(g)) == 1
        assert g.labels.min() >= 0
        assert g.labels.max() < 18  # PTC_MR label alphabet


@given(seed=st.integers(0, 30))
@settings(max_examples=8, deadline=None)
def test_ego_networks_have_hub(seed):
    ds = make_dataset("IMDB-BINARY", scale=0.02, seed=seed)
    for g in ds.graphs:
        # vertex 0 is the ego and touches every clique
        assert g.degree(0) >= 1
        assert len(connected_components(g)) == 1


@given(
    scale_a=st.floats(0.02, 0.05),
    scale_b=st.floats(0.1, 0.2),
)
@settings(max_examples=6, deadline=None)
def test_scale_monotone_in_graph_count(scale_a, scale_b):
    small = make_dataset("NCI1", scale=scale_a, seed=0)
    large = make_dataset("NCI1", scale=scale_b, seed=0)
    assert len(large) >= len(small)
