"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    BrainNetworkGenerator,
    EgoNetworkGenerator,
    MoleculeGenerator,
    SynthieGenerator,
    community_dataset,
    ego_dataset,
    molecule_dataset,
)
from repro.graph import connected_components


class TestMoleculeGenerator:
    def test_sparse_molecule_connected(self):
        gen = MoleculeGenerator(avg_nodes=15, num_labels=6)
        g = gen.sample(0, 0)
        assert len(connected_components(g)) == 1

    def test_labels_in_alphabet(self):
        gen = MoleculeGenerator(avg_nodes=12, num_labels=5)
        g = gen.sample(1, 1)
        assert g.labels.max() < 5

    def test_complete_variant(self):
        gen = MoleculeGenerator(avg_nodes=10, num_labels=4, complete=True)
        g = gen.sample(0, 0)
        assert g.num_edges == g.n * (g.n - 1) // 2

    def test_deterministic(self):
        gen = MoleculeGenerator(avg_nodes=14, num_labels=6)
        assert gen.sample(0, 7) == gen.sample(0, 7)

    def test_class_out_of_range(self):
        gen = MoleculeGenerator(num_classes=2)
        with pytest.raises(ValueError):
            gen.sample(5, 0)

    def test_extra_edges_raise_density(self):
        sparse = MoleculeGenerator(avg_nodes=30, extra_edge_rate=0.0)
        dense = MoleculeGenerator(avg_nodes=30, extra_edge_rate=1.0)
        e_sparse = np.mean([sparse.sample(0, s).num_edges for s in range(10)])
        e_dense = np.mean([dense.sample(0, s).num_edges for s in range(10)])
        assert e_dense > e_sparse * 1.5

    def test_dataset_balanced(self):
        gen = MoleculeGenerator(num_classes=2)
        graphs, y = molecule_dataset(gen, 20, seed=0)
        assert len(graphs) == 20
        assert np.bincount(y).tolist() == [10, 10]


class TestEgoNetworkGenerator:
    def test_ego_connected_to_all_cliques(self):
        gen = EgoNetworkGenerator([(3.0, 4.0, 0.2)], avg_nodes=15)
        g = gen.sample(0, 0)
        assert len(connected_components(g)) == 1

    def test_class_profiles_differ_in_density(self):
        gen = EgoNetworkGenerator(
            [(1.5, 12.0, 0.1), (6.0, 3.0, 0.1)], avg_nodes=20
        )
        dens = []
        for cls in (0, 1):
            ds = [gen.sample(cls, s) for s in range(15)]
            dens.append(np.mean([g.num_edges / g.n for g in ds]))
        assert dens[0] > dens[1]  # big cliques are denser

    def test_rejects_empty_profiles(self):
        with pytest.raises(ValueError):
            EgoNetworkGenerator([])

    def test_dataset_covers_classes(self):
        gen = EgoNetworkGenerator([(2.0, 5.0, 0.2), (3.0, 4.0, 0.2)])
        _, y = ego_dataset(gen, 11, seed=0)
        assert set(y.tolist()) == {0, 1}


class TestSynthieGenerator:
    def test_four_classes(self):
        gen = SynthieGenerator(seed_nodes=20)
        graphs, y = community_dataset(gen, 16, seed=0)
        assert set(y.tolist()) == {0, 1, 2, 3}

    def test_fixed_size(self):
        gen = SynthieGenerator(seed_nodes=25)
        g = gen.sample(0, 0)
        assert g.n == 25

    def test_connected(self):
        gen = SynthieGenerator(seed_nodes=20)
        for cls in range(4):
            g = gen.sample(cls, cls)
            assert len(connected_components(g)) == 1

    def test_seed_families_structurally_distinct(self):
        gen = SynthieGenerator(seed_nodes=30)
        # Same class twice with different seeds shares the seed skeleton.
        g1 = gen.sample(0, 1)
        g2 = gen.sample(2, 1)
        assert g1 != g2


class TestBrainNetworkGenerator:
    def test_vertex_labels_are_atlas_regions(self):
        gen = BrainNetworkGenerator(atlas_size=190)
        g = gen.sample(0, 0)
        assert g.labels.max() < 190
        assert len(set(g.labels.tolist())) == g.n  # distinct ROIs

    def test_subject_size_near_mean(self):
        gen = BrainNetworkGenerator(regions_per_subject=27.0)
        sizes = [gen.sample(0, s).n for s in range(20)]
        assert 20 < np.mean(sizes) < 35

    def test_classes_differ_in_modularity(self):
        gen = BrainNetworkGenerator()
        def within_fraction(g):
            comm = gen.community_of
            within = sum(
                1 for u, v in g.edges if comm[g.labels[u]] == comm[g.labels[v]]
            )
            return within / max(g.num_edges, 1)
        f0 = np.mean([within_fraction(gen.sample(0, s)) for s in range(10)])
        f1 = np.mean([within_fraction(gen.sample(1, s)) for s in range(10)])
        assert f0 > f1
