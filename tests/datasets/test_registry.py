"""Tests for the benchmark dataset registry (paper Table 1)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    PAPER_STATS,
    degree_labeled,
    make_dataset,
    paper_statistics,
)
from repro.graph import path_graph


class TestRegistry:
    def test_all_fifteen_present(self):
        assert len(DATASET_NAMES) == 15

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("NO_SUCH_DATASET")

    def test_extra_dataset_mutag(self):
        # MUTAG is generatable (for CLI/observability demos) but stays out
        # of the Table 1 benchmark surface.
        assert "MUTAG" not in DATASET_NAMES
        ds = make_dataset("MUTAG", scale=0.05, seed=0)
        assert ds.statistics().num_classes == 2

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("KKI", scale=0.0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generates_with_right_classes(self, name):
        ds = make_dataset(name, scale=0.02, seed=0)
        assert ds.statistics().num_classes == PAPER_STATS[name].num_classes

    @pytest.mark.parametrize("name", ["PTC_MR", "IMDB-BINARY", "KKI"])
    def test_deterministic(self, name):
        a = make_dataset(name, scale=0.05, seed=3)
        b = make_dataset(name, scale=0.05, seed=3)
        assert all(g1 == g2 for g1, g2 in zip(a.graphs, b.graphs))
        assert np.array_equal(a.y, b.y)

    @pytest.mark.parametrize("name", ["PTC_MR", "IMDB-BINARY"])
    def test_seed_changes_data(self, name):
        a = make_dataset(name, scale=0.05, seed=0)
        b = make_dataset(name, scale=0.05, seed=1)
        assert any(g1 != g2 for g1, g2 in zip(a.graphs, b.graphs))

    def test_scale_controls_size(self):
        small = make_dataset("NCI1", scale=0.02, seed=0)
        large = make_dataset("NCI1", scale=0.1, seed=0)
        assert len(large) > len(small)

    def test_minimum_forty_graphs(self):
        ds = make_dataset("KKI", scale=0.01, seed=0)
        assert len(ds) >= 40

    @pytest.mark.parametrize(
        "name", ["PTC_MR", "NCI1", "ENZYMES", "KKI", "BZR_MD"]
    )
    def test_avg_nodes_near_paper(self, name):
        ds = make_dataset(name, scale=0.05, seed=0)
        s = ds.statistics()
        paper = PAPER_STATS[name]
        assert abs(s.avg_nodes - paper.avg_nodes) / paper.avg_nodes < 0.25

    def test_unlabeled_datasets_get_degree_labels(self):
        ds = make_dataset("IMDB-BINARY", scale=0.05, seed=0)
        assert not ds.has_vertex_labels
        for g in ds.graphs[:5]:
            assert np.array_equal(g.labels, g.degrees())

    def test_complete_graph_datasets(self):
        ds = make_dataset("BZR_MD", scale=0.05, seed=0)
        g = ds.graphs[0]
        assert g.num_edges == g.n * (g.n - 1) // 2

    def test_paper_statistics_row(self):
        s = paper_statistics("ENZYMES")
        assert s.size == 600
        assert s.num_classes == 6


class TestDegreeLabeled:
    def test_replaces_labels(self):
        g = path_graph(4).with_labels([9, 9, 9, 9])
        out = degree_labeled([g])[0]
        assert out.labels.tolist() == [1, 2, 2, 1]
