"""Tests for TU-format dataset IO."""

import numpy as np
import pytest

from repro.datasets import GraphDataset, make_dataset
from repro.datasets.tu_format import load_tu_dataset, save_tu_dataset
from repro.graph import Graph, cycle_graph, path_graph


@pytest.fixture
def toy():
    return GraphDataset(
        name="TOY",
        graphs=[
            cycle_graph(3).with_labels([1, 2, 3]),
            path_graph(4).with_labels([2, 2, 1, 1]),
        ],
        y=np.array([0, 1]),
    )


class TestRoundtrip:
    def test_graphs_identical(self, toy, tmp_path):
        save_tu_dataset(toy, tmp_path / "TOY")
        loaded = load_tu_dataset(tmp_path / "TOY")
        assert len(loaded) == 2
        for original, restored in zip(toy.graphs, loaded.graphs):
            assert original == restored
        assert np.array_equal(loaded.y, toy.y)

    def test_synthetic_benchmark_roundtrip(self, tmp_path):
        ds = make_dataset("PTC_MR", scale=0.05, seed=0)
        save_tu_dataset(ds, tmp_path / "PTC_MR")
        loaded = load_tu_dataset(tmp_path / "PTC_MR")
        assert len(loaded) == len(ds)
        for original, restored in zip(ds.graphs, loaded.graphs):
            assert original == restored

    def test_name_defaults_to_directory(self, toy, tmp_path):
        save_tu_dataset(toy, tmp_path / "TOY")
        loaded = load_tu_dataset(tmp_path / "TOY")
        assert loaded.name == "TOY"


class TestEdgeCases:
    def test_edgeless_graph(self, tmp_path):
        ds = GraphDataset(name="E", graphs=[Graph(3, [])], y=np.array([0]))
        # Single-class dataset is fine for IO purposes.
        save_tu_dataset(ds, tmp_path / "E")
        loaded = load_tu_dataset(tmp_path / "E")
        assert loaded.graphs[0].n == 3
        assert loaded.graphs[0].num_edges == 0

    def test_missing_files_raise(self, tmp_path):
        (tmp_path / "X").mkdir()
        with pytest.raises(FileNotFoundError):
            load_tu_dataset(tmp_path / "X")

    def test_without_node_labels(self, toy, tmp_path):
        save_tu_dataset(toy, tmp_path / "TOY")
        (tmp_path / "TOY" / "TOY_node_labels.txt").unlink()
        loaded = load_tu_dataset(tmp_path / "TOY")
        assert not loaded.has_vertex_labels
        assert loaded.graphs[0].labels.tolist() == [0, 0, 0]

    def test_cross_graph_edge_rejected(self, toy, tmp_path):
        save_tu_dataset(toy, tmp_path / "TOY")
        adj = tmp_path / "TOY" / "TOY_A.txt"
        adj.write_text(adj.read_text() + "1, 7\n")  # vertex 1 in g1, 7 in g2
        with pytest.raises(ValueError, match="crosses graphs"):
            load_tu_dataset(tmp_path / "TOY")

    def test_negative_node_labels_shifted(self, toy, tmp_path):
        save_tu_dataset(toy, tmp_path / "TOY")
        nl = tmp_path / "TOY" / "TOY_node_labels.txt"
        nl.write_text("-1\n0\n1\n0\n0\n-1\n-1\n")
        loaded = load_tu_dataset(tmp_path / "TOY")
        assert loaded.graphs[0].labels.min() >= 0
