"""Fixtures for the distributed-CV tests.

Two worker flavours:

* **In-process** workers (:func:`worker_fleet`) — real sockets over
  loopback, but the worker accept loops run as threads in the test
  process.  Fast, and sufficient for protocol/scheduling semantics.
* **Subprocess** workers (:func:`spawn_worker`) — the real deployment
  shape, launched via ``python -m repro dist worker`` and addressed by
  parsing the printed ``listening on`` contract line.  Used by the
  acceptance tests (bitwise parity, kill-fault reassignment) where an
  injected ``kill`` must take a whole worker *process* down.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: The ``repro dist worker`` startup contract line.
LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+) \(shard (\d+)/(\d+)\)")


@pytest.fixture
def worker_fleet():
    """Factory: ``fleet(n)`` starts n in-process workers, yields addresses."""
    from repro.dist import DistWorker

    started: list = []

    def fleet(num_shards: int, **worker_kwargs):
        workers = [
            DistWorker(shard_index=i, num_shards=num_shards, **worker_kwargs)
            for i in range(num_shards)
        ]
        addresses = [w.start() for w in workers]
        started.extend(workers)
        return workers, addresses

    yield fleet
    for worker in started:
        worker.stop()


class WorkerProcess:
    """Handle on one ``repro dist worker`` subprocess."""

    def __init__(self, proc: subprocess.Popen, host: str, port: int) -> None:
        self.proc = proc
        self.host = host
        self.port = port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def wait(self, timeout: float = 15.0) -> int:
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=15.0)


@pytest.fixture
def spawn_worker():
    """Factory: launch a worker subprocess and parse its contract line."""
    spawned: list[WorkerProcess] = []

    def spawn(
        shard_index: int,
        num_shards: int,
        *,
        cache_dir: str | None = None,
        env: dict | None = None,
    ) -> WorkerProcess:
        run_env = dict(os.environ)
        run_env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + run_env["PYTHONPATH"] if run_env.get("PYTHONPATH") else ""
        )
        if env:
            run_env.update(env)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "dist",
            "worker",
            "--shard",
            f"{shard_index}/{num_shards}",
            "--port",
            "0",
        ]
        if cache_dir is not None:
            argv += ["--cache-dir", cache_dir]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=run_env,
        )
        line = proc.stdout.readline()
        match = LISTEN_RE.search(line)
        if not match:
            proc.kill()
            rest = proc.stdout.read()
            raise AssertionError(f"no contract line from worker: {line!r}{rest!r}")
        handle = WorkerProcess(proc, match.group(1), int(match.group(2)))
        spawned.append(handle)
        return handle

    yield spawn
    for handle in spawned:
        handle.kill()


def strip_timing(result: dict) -> dict:
    """A fold result minus its wall-clock field.

    Everything else in a journaled result is deterministic and must be
    bitwise-equal across executors; ``seconds`` is honest wall time and
    differs even between two serial runs.
    """
    return {k: v for k, v in result.items() if k != "seconds"}


def journal_contents(checkpoint_dir) -> dict[int, dict]:
    """All journaled folds under a checkpoint dir, timing stripped."""
    import json

    contents: dict[int, dict] = {}
    for path in Path(checkpoint_dir).rglob("folds.jsonl"):
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            contents[int(entry["fold"])] = strip_timing(entry["result"])
    return contents
