"""Multi-process FeatureMapCache contention on a shared cache directory.

Distributed workers on one host share a disk cache; the invariant under
contention is *miss-or-complete*: a reader sees either the full payload
or a clean miss — never a torn entry, never an exception into the
pipeline.  These tests drive real concurrent processes at one cache
directory and check exactly that.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.cache import FeatureMapCache, cache_key
from repro.parallel import fork_available
from repro.resilience import faults

pytestmark = [pytest.mark.dist, pytest.mark.slow]

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

KEY = cache_key("counts", "aaaabbbb", "ccccdddd")


def _payload(fill: float) -> dict[str, np.ndarray]:
    return {
        "counts": np.full((64, 8), fill, dtype=np.float64),
        "ids": np.full(64, fill, dtype=np.int64),
    }


def _writer(cache_dir, fill, barrier, rounds):
    cache = FeatureMapCache(cache_dir)
    cache.put(KEY, _payload(fill), namespace="counts")  # pre-seed: reads hit
    barrier.wait()
    for _ in range(rounds):
        cache.put(KEY, _payload(fill), namespace="counts")


def _reader(cache_dir, barrier, rounds, queue):
    # memory_items=0 forces every get through the disk tier, which is
    # where the contention lives; mmap reads validate the zip structure.
    cache = FeatureMapCache(cache_dir, memory_items=0)
    barrier.wait()
    outcomes = []
    for _ in range(rounds):
        payload = cache.get(KEY, namespace="counts")
        if payload is None:
            outcomes.append(None)
            continue
        counts = np.asarray(payload["counts"])
        ids = np.asarray(payload["ids"])
        fill = counts.flat[0]
        consistent = (
            counts.shape == (64, 8)
            and ids.shape == (64,)
            and bool(np.all(counts == fill))
            and bool(np.all(ids == int(fill)))
        )
        outcomes.append(float(fill) if consistent else "TORN")
    queue.put(outcomes)


@needs_fork
def test_concurrent_put_get_is_miss_or_complete(tmp_path):
    """Readers racing writers over one key never observe a torn payload."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(4)
    queue = ctx.Queue()
    writers = [
        ctx.Process(target=_writer, args=(tmp_path, float(fill), barrier, 40))
        for fill in (1, 2)
    ]
    readers = [
        ctx.Process(target=_reader, args=(tmp_path, barrier, 80, queue))
        for _ in range(2)
    ]
    procs = writers + readers
    for p in procs:
        p.start()
    results = [queue.get(timeout=60) for _ in readers]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    seen = {outcome for outcomes in results for outcome in outcomes}
    assert "TORN" not in seen
    # The key existed for most of the run: some reads must have hit.
    assert seen & {1.0, 2.0}


def _racing_writer(cache_dir, fill, barrier, queue):
    cache = FeatureMapCache(cache_dir)
    barrier.wait()  # all writers hit os.replace on the same path together
    cache.put(KEY, _payload(fill), namespace="counts")
    queue.put(fill)


@needs_fork
def test_atomic_rename_race_leaves_one_whole_payload(tmp_path):
    """N simultaneous writers: the surviving file is one writer's payload
    in full, never an interleaving of several."""
    ctx = multiprocessing.get_context("fork")
    contenders = 4
    barrier = ctx.Barrier(contenders)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_racing_writer, args=(tmp_path, float(i + 1), barrier, queue)
        )
        for i in range(contenders)
    ]
    for p in procs:
        p.start()
    fills = {queue.get(timeout=60) for _ in procs}
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    reader = FeatureMapCache(tmp_path, memory_items=0)
    payload = reader.get(KEY, namespace="counts")
    assert payload is not None
    fill = float(np.asarray(payload["counts"]).flat[0])
    assert fill in fills
    np.testing.assert_array_equal(payload["counts"], _payload(fill)["counts"])
    np.testing.assert_array_equal(payload["ids"], _payload(fill)["ids"])
    # Exactly the one entry remains; no temp-file litter from the race.
    leftovers = [p.name for p in tmp_path.rglob(".tmp-*")]
    assert leftovers == []


def test_corrupt_write_reads_as_clean_miss(tmp_path):
    """A torn disk entry (corrupt-mode fault) is a miss, then self-heals."""
    cache = FeatureMapCache(tmp_path)
    faults.install("corrupt@cache_write:0")
    try:
        cache.put(KEY, _payload(7.0), namespace="counts")
    finally:
        faults.clear()
    # The entry is on disk but torn; a fresh cache (no memory tier copy)
    # must treat it as a miss and drop the damaged file.
    reader = FeatureMapCache(tmp_path, memory_items=0)
    assert reader.get(KEY, namespace="counts") is None
    assert reader.stats.errors == 1
    assert reader.stats.misses == 1
    assert not list(tmp_path.rglob("*.npz"))  # damaged entry was unlinked
    # A clean rewrite restores service.
    cache.put(KEY, _payload(7.0), namespace="counts")
    healed = reader.get(KEY, namespace="counts")
    assert healed is not None
    np.testing.assert_array_equal(healed["counts"], _payload(7.0)["counts"])


def _corrupting_writer(cache_dir, barrier, state_dir):
    faults.install("corrupt@cache_write:0", state_dir=state_dir)
    try:
        cache = FeatureMapCache(cache_dir)
        barrier.wait()
        for fill in (3.0, 4.0):  # first write torn, second clean
            cache.put(KEY, _payload(fill), namespace="counts")
    finally:
        faults.clear()


@needs_fork
def test_interleaved_corruption_never_surfaces_to_readers(tmp_path):
    """Readers racing a writer whose first write is torn still only ever
    see miss-or-complete."""
    ctx = multiprocessing.get_context("fork")
    cache_dir = tmp_path / "cache"
    barrier = ctx.Barrier(3)
    queue = ctx.Queue()
    writer = ctx.Process(
        target=_corrupting_writer,
        args=(cache_dir, barrier, str(tmp_path / "faults-state")),
    )
    readers = [
        ctx.Process(target=_reader, args=(cache_dir, barrier, 60, queue))
        for _ in range(2)
    ]
    procs = [writer] + readers
    for p in procs:
        p.start()
    results = [queue.get(timeout=60) for _ in readers]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    seen = {outcome for outcomes in results for outcome in outcomes}
    assert "TORN" not in seen
    # After the dust settles the clean rewrite is readable.
    final = FeatureMapCache(cache_dir, memory_items=0).get(
        KEY, namespace="counts"
    )
    assert final is not None
    assert float(np.asarray(final["counts"]).flat[0]) == 4.0
