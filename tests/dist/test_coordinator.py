"""Coordinator scheduling semantics with in-process loopback workers."""

from __future__ import annotations

import socket

import pytest

from repro.dist import DistCoordinator, DistWorker, WorkerRejected, run_spec
from repro.dist.protocol import dataset_from_spec, kernel_for
from repro.eval.protocol import evaluate_kernel_svm

pytestmark = pytest.mark.dist

SPEC = run_spec("wl-svm", "PTC_MR", scale=0.05, dataset_seed=0, n_splits=3, seed=0)


@pytest.fixture(scope="module")
def serial_reference():
    dataset = dataset_from_spec(SPEC["dataset"]).materialize()
    return evaluate_kernel_svm(kernel_for("wl-svm"), dataset, n_splits=3, seed=0)


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_two_worker_parity(worker_fleet, serial_reference):
    _, addresses = worker_fleet(2)
    with DistCoordinator(addresses) as coordinator:
        report = coordinator.run(SPEC)
    assert report.result.fold_accuracies == serial_reference.fold_accuracies
    assert report.result.extra["selected_c"] == serial_reference.extra["selected_c"]
    assert report.completed_remote == 3
    assert not report.degraded_folds
    scheduled = sorted(f for folds in report.folds_by_worker.values() for f in folds)
    assert scheduled == [0, 1, 2]


def test_single_worker_runs_all_folds(worker_fleet, serial_reference):
    _, addresses = worker_fleet(1)
    with DistCoordinator(addresses) as coordinator:
        report = coordinator.run(SPEC)
    assert report.result.fold_accuracies == serial_reference.fold_accuracies
    assert report.folds_by_worker == {"shard0": [0, 1, 2]}


def test_dead_address_at_registration_degrades_gracefully(
    worker_fleet, serial_reference
):
    _, addresses = worker_fleet(1)
    with DistCoordinator(addresses + [("127.0.0.1", _free_port())]) as coordinator:
        report = coordinator.run(SPEC)
    assert report.result.fold_accuracies == serial_reference.fold_accuracies
    assert report.worker_deaths == 1
    assert report.completed_remote == 3  # the live worker absorbed everything


def test_all_workers_dead_runs_serially(serial_reference):
    with DistCoordinator([("127.0.0.1", _free_port())]) as coordinator:
        report = coordinator.run(SPEC)
    # Full degradation: every fold computed locally, same answer.
    assert report.result.fold_accuracies == serial_reference.fold_accuracies
    assert sorted(report.degraded_folds) == [0, 1, 2]
    assert report.completed_remote == 0


def test_inconsistent_shard_geometry_is_rejected():
    workers = [
        DistWorker(shard_index=0, num_shards=2),
        DistWorker(shard_index=0, num_shards=3),  # wrong num_shards
    ]
    addresses = [w.start() for w in workers]
    try:
        with DistCoordinator(addresses) as coordinator:
            with pytest.raises(ValueError, match="geometry"):
                coordinator.run(SPEC)
    finally:
        for w in workers:
            w.stop()


def test_duplicate_shard_ownership_is_rejected():
    workers = [
        DistWorker(shard_index=0, num_shards=2, worker_id="a"),
        DistWorker(shard_index=0, num_shards=2, worker_id="b"),
    ]
    addresses = [w.start() for w in workers]
    try:
        with DistCoordinator(addresses) as coordinator:
            with pytest.raises(ValueError, match="geometry"):
                coordinator.run(SPEC)
    finally:
        for w in workers:
            w.stop()


def test_deterministic_worker_error_aborts_not_retries(worker_fleet):
    """An unknown model fails identically everywhere: abort, no retry."""
    _, addresses = worker_fleet(1)
    bad = dict(SPEC, model="no-such-model")
    with DistCoordinator(addresses) as coordinator:
        with pytest.raises(WorkerRejected, match="no-such-model"):
            coordinator.run(bad)


def test_empty_worker_list_is_rejected():
    with pytest.raises(ValueError, match="at least one worker"):
        DistCoordinator([])


def test_journal_completes_and_resumes_with_zero_dispatch(
    worker_fleet, serial_reference, tmp_path
):
    _, addresses = worker_fleet(2)
    with DistCoordinator(addresses) as coordinator:
        first = coordinator.run(SPEC, checkpoint_dir=tmp_path)
    assert first.result.fold_accuracies == serial_reference.fold_accuracies
    journal_files = list(tmp_path.rglob("folds.jsonl"))
    assert len(journal_files) == 1
    # No claim files linger once every fold is released.
    assert not list(tmp_path.rglob("*.claim"))
    with DistCoordinator(addresses) as coordinator:
        second = coordinator.run(SPEC, checkpoint_dir=tmp_path)
    assert second.dispatched == 0
    assert second.completed_from_journal == 3
    assert second.result.fold_accuracies == serial_reference.fold_accuracies


def test_no_resume_discards_the_journal(worker_fleet, tmp_path):
    _, addresses = worker_fleet(2)
    with DistCoordinator(addresses) as coordinator:
        coordinator.run(SPEC, checkpoint_dir=tmp_path)
        report = coordinator.run(SPEC, checkpoint_dir=tmp_path, resume=False)
    assert report.completed_from_journal == 0
    assert report.dispatched == 3


def test_serial_journal_resumes_distributed_run(
    worker_fleet, serial_reference, tmp_path
):
    """Run keys are shared: a serial journal short-circuits a dist run."""
    dataset = dataset_from_spec(SPEC["dataset"]).materialize()
    serial = evaluate_kernel_svm(
        kernel_for("wl-svm"),
        dataset,
        n_splits=3,
        seed=0,
        checkpoint_dir=tmp_path,
    )
    _, addresses = worker_fleet(2)
    with DistCoordinator(addresses) as coordinator:
        report = coordinator.run(SPEC, checkpoint_dir=tmp_path)
    assert report.dispatched == 0
    assert report.completed_from_journal == 3
    assert report.result.fold_accuracies == serial.fold_accuracies
