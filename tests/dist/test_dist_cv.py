"""Acceptance: distributed CV is bitwise-equal to serial, faults included.

Subprocess workers (the real deployment shape) at 2 and 4 loopback
workers, for all three kernel variants and a DeepMap neural model:

* fold accuracies AND journal contents equal serial execution bitwise
  (modulo the honest wall-clock ``seconds`` field, which differs even
  between two serial runs);
* a ``kill``-action fault (faults DSL) taking a worker process down
  mid-fold changes nothing: the fold is reassigned and the answers stay
  bitwise-equal;
* a rerun against the journal resumes with **zero** recomputed folds.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dist import DistCoordinator, run_spec
from repro.dist.protocol import (
    dataset_from_spec,
    kernel_for,
    model_factory_for,
)
from repro.eval.protocol import evaluate_kernel_svm, evaluate_neural_model
from repro.resilience.faults import KILL_EXIT_CODE
from tests.dist.conftest import journal_contents, strip_timing

pytestmark = [pytest.mark.dist, pytest.mark.slow]

SCALE = 0.05
FOLDS = 3


def _spec(model: str) -> dict:
    return run_spec(
        model, "PTC_MR", scale=SCALE, dataset_seed=0, n_splits=FOLDS, seed=0,
        epochs=2,
    )


def _serial(model: str, checkpoint_dir=None):
    spec = _spec(model)
    dataset = dataset_from_spec(spec["dataset"]).materialize()
    kernel = kernel_for(model)
    if kernel is not None:
        return evaluate_kernel_svm(
            kernel, dataset, n_splits=FOLDS, seed=0,
            checkpoint_dir=checkpoint_dir,
        )
    return evaluate_neural_model(
        model_factory_for(model, 2), dataset, n_splits=FOLDS, seed=0,
        name=model, checkpoint_dir=checkpoint_dir,
    )


def _assert_bitwise(result, reference):
    assert result.fold_accuracies == reference.fold_accuracies
    assert result.best_epoch == reference.best_epoch
    for key, value in reference.extra.items():
        if key == "fold_seconds":
            continue
        assert result.extra[key] == value, key


@pytest.mark.parametrize("model", ["gk-svm", "sp-svm", "wl-svm"])
@pytest.mark.parametrize("num_workers", [2, 4])
def test_kernel_cv_bitwise_parity(spawn_worker, tmp_path, model, num_workers):
    serial = _serial(model, checkpoint_dir=tmp_path / "serial")
    handles = [spawn_worker(i, num_workers) for i in range(num_workers)]
    with DistCoordinator([h.address for h in handles]) as coordinator:
        report = coordinator.run(_spec(model), checkpoint_dir=tmp_path / "dist")
    _assert_bitwise(report.result, serial)
    assert report.completed_remote == FOLDS
    assert not report.degraded_folds
    # Journal contents equal the serial journal's, fold for fold.
    dist_journal = journal_contents(tmp_path / "dist")
    serial_journal = journal_contents(tmp_path / "serial")
    assert sorted(dist_journal) == list(range(FOLDS))
    assert dist_journal == serial_journal
    # Same run key: serial and dist journals live under the same name.
    assert {p.parent.name for p in (tmp_path / "dist").rglob("folds.jsonl")} == {
        p.parent.name for p in (tmp_path / "serial").rglob("folds.jsonl")
    }


def test_neural_cv_bitwise_parity(spawn_worker, tmp_path):
    serial = _serial("deepmap-wl", checkpoint_dir=tmp_path / "serial")
    handles = [spawn_worker(i, 2) for i in range(2)]
    with DistCoordinator([h.address for h in handles]) as coordinator:
        report = coordinator.run(
            _spec("deepmap-wl"), checkpoint_dir=tmp_path / "dist"
        )
    _assert_bitwise(report.result, serial)
    assert journal_contents(tmp_path / "dist") == journal_contents(
        tmp_path / "serial"
    )


@pytest.mark.parametrize("model", ["wl-svm", "gk-svm", "sp-svm"])
def test_kill_fault_mid_fold_reassigns_and_stays_bitwise(
    spawn_worker, tmp_path, model
):
    """One worker is killed mid-fold; parity and the journal survive."""
    serial = _serial(model)
    fault_env = {
        # The doomed worker dies on whichever fold it is dispatched
        # first — scheduling is load-driven, so arm every fold.
        "REPRO_FAULTS": ",".join(f"kill@fold:{f}" for f in range(FOLDS)),
        "REPRO_FAULTS_STATE": str(tmp_path / "faults-state"),
    }
    doomed = spawn_worker(0, 2, env=fault_env)
    survivor = spawn_worker(1, 2)
    ckpt = tmp_path / "ckpt"
    with DistCoordinator(
        [doomed.address, survivor.address], heartbeat_interval_s=0.3
    ) as coordinator:
        report = coordinator.run(_spec(model), checkpoint_dir=ckpt)
    _assert_bitwise(report.result, serial)
    assert report.worker_deaths == 1
    assert report.reassignments >= 1
    assert doomed.wait() == KILL_EXIT_CODE  # died by the fault, not cleanup
    assert sorted(journal_contents(ckpt)) == list(range(FOLDS))

    # Rerun resumes from the journal: zero folds recomputed, zero
    # dispatched, same bitwise answer.
    fresh = spawn_worker(0, 2)
    before = journal_contents(ckpt)
    with DistCoordinator([fresh.address]) as coordinator:
        rerun = coordinator.run(_spec(model), checkpoint_dir=ckpt)
    assert rerun.dispatched == 0
    assert rerun.completed_from_journal == FOLDS
    _assert_bitwise(rerun.result, serial)
    assert journal_contents(ckpt) == before  # nothing was re-journaled


def test_crash_between_folds_resumes_only_missing(spawn_worker, tmp_path):
    """Kill after fold 0 completes: the rerun recomputes only folds 1, 2."""
    serial = _serial("wl-svm")
    ckpt = tmp_path / "ckpt"

    # Phase 1: a single worker armed to die on its second fold.
    fault_env = {
        "REPRO_FAULTS": "kill@fold:1,kill@fold:2",
        "REPRO_FAULTS_STATE": str(tmp_path / "faults-state"),
    }
    doomed = spawn_worker(0, 1, env=fault_env)
    with DistCoordinator(
        [doomed.address], heartbeat_interval_s=0.3, max_fold_retries=0
    ) as coordinator:
        partial = coordinator.run(_spec("wl-svm"), checkpoint_dir=ckpt)
    # The run still finishes (degraded folds run serially in the
    # coordinator) and the journal holds all folds...
    _assert_bitwise(partial.result, serial)
    assert doomed.wait() == KILL_EXIT_CODE
    journaled = journal_contents(ckpt)
    assert sorted(journaled) == list(range(FOLDS))
    # ...including the fold the worker completed *before* dying.
    remote_folds = [f for fs in partial.folds_by_worker.values() for f in fs]
    assert remote_folds  # at least one fold finished remotely pre-crash
    for fold in remote_folds:
        assert journaled[fold] == strip_timing(
            {"accuracy": serial.fold_accuracies[fold],
             "selected_c": serial.extra["selected_c"][fold],
             "seconds": 0.0}
        )


def test_cli_dist_run_end_to_end(spawn_worker, tmp_path):
    """`repro dist run` against `repro dist worker` processes."""
    import os
    import subprocess
    import sys

    from tests.dist.conftest import SRC_DIR

    handles = [spawn_worker(i, 2) for i in range(2)]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "dist", "run",
            "--dataset", "PTC_MR", "--model", "wl-svm",
            "--scale", str(SCALE), "--folds", str(FOLDS), "--seed", "0",
            "--workers", ",".join(f"{h.host}:{h.port}" for h in handles),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--shutdown-workers",
        ],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert out.returncode == 0, out.stdout + out.stderr
    serial = _serial("wl-svm")
    assert f"accuracy: {serial.formatted()}" in out.stdout
    assert "folds remote" in out.stdout
    for handle in handles:
        assert handle.wait() == 0  # --shutdown-workers stopped them cleanly
