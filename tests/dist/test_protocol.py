"""The dist op protocol and the canonical model/dataset registries."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.dist import protocol

pytestmark = pytest.mark.dist


def test_registry_covers_every_cli_model_choice():
    from repro.cli import MODEL_CHOICES

    for model in MODEL_CHOICES:
        kernel = protocol.kernel_for(model)
        factory = protocol.model_factory_for(model, epochs=1)
        # Every CLI choice is exactly one of kernel or neural.
        assert (kernel is None) != (factory is None), model
    assert set(protocol.KERNEL_MODELS) | set(protocol.NEURAL_MODELS) == set(
        MODEL_CHOICES
    )


def test_kernel_registry_is_deterministic():
    a = protocol.kernel_for("wl-svm")
    b = protocol.kernel_for("wl-svm")
    assert type(a) is type(b)
    assert a.name == b.name
    assert protocol.kernel_for("deepmap-wl") is None
    assert protocol.kernel_for("nonsense") is None


def test_model_factory_builds_fresh_models():
    factory = protocol.model_factory_for("deepmap-wl", epochs=2)
    m1, m2 = factory(0), factory(0)
    assert m1 is not m2
    assert protocol.model_factory_for("nonsense", epochs=2) is None


def test_dataset_from_spec_reconstructs_identically():
    spec = {"name": "PTC_MR", "scale": 0.05, "seed": 0}
    a = protocol.dataset_from_spec(spec).materialize()
    b = protocol.dataset_from_spec(spec).materialize()
    assert len(a) == len(b)
    np.testing.assert_array_equal(a.y, b.y)
    for ga, gb in zip(a.graphs, b.graphs):
        assert ga == gb  # Graph equality: vertices, edges, labels


def test_send_recv_message_roundtrip():
    a, b = socket.socketpair()
    try:
        protocol.send_message(
            a, {"op": protocol.OP_RUN_FOLD, "fold": 2}, {"idx": np.arange(5)}
        )
        header, arrays = protocol.recv_message(b)
        assert header == {"op": protocol.OP_RUN_FOLD, "fold": 2}
        np.testing.assert_array_equal(arrays["idx"], np.arange(5))
        a.close()
        assert protocol.recv_message(b) is None
    finally:
        b.close()
