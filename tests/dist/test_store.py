"""Shard partitioning and the sharded gram assembly's bitwise parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import FeatureMapCache
from repro.datasets import make_dataset
from repro.dist.store import shard_graphs, sharded_gram, warm_shard_counts
from repro.kernels import (
    GraphletKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)
from repro.stream import partition_bounds

pytestmark = pytest.mark.dist


KERNELS = [
    pytest.param(lambda: WeisfeilerLehmanKernel(3), id="wl"),
    pytest.param(lambda: ShortestPathKernel(), id="sp"),
    pytest.param(lambda: GraphletKernel(k=4, samples=10, seed=0), id="gk"),
]


def _stream(scale: float = 0.05):
    return make_dataset("PTC_MR", scale=scale, seed=0, stream=True)


# ----------------------------------------------------------------------
# partition_bounds
# ----------------------------------------------------------------------

def test_partition_bounds_cover_exactly_once():
    for n in (0, 1, 7, 24, 100):
        for parts in (1, 2, 3, 4, 7):
            spans = [partition_bounds(n, parts, i) for i in range(parts)]
            # Contiguous, ordered, disjoint, covering [0, n).
            assert spans[0][0] == 0
            assert spans[-1][1] == n
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 == b0
                assert a0 <= a1 and b0 <= b1


def test_partition_bounds_balance():
    for parts in (2, 3, 4):
        sizes = [b - a for a, b in (partition_bounds(10, parts, i) for i in range(parts))]
        assert max(sizes) - min(sizes) <= 1


def test_partition_bounds_rejects_bad_indices():
    with pytest.raises(IndexError):
        partition_bounds(10, 2, 2)
    with pytest.raises(IndexError):
        partition_bounds(10, 2, -1)
    with pytest.raises(ValueError):
        partition_bounds(10, 0, 0)


def test_shard_graphs_concatenate_to_the_full_dataset():
    stream = _stream()
    full = stream.materialize().graphs
    for parts in (1, 2, 3):
        pieces = [shard_graphs(stream, i, parts) for i in range(parts)]
        flat = [g for piece in pieces for g in piece]
        assert len(flat) == len(full)
        assert all(a == b for a, b in zip(flat, full))


# ----------------------------------------------------------------------
# sharded gram parity
# ----------------------------------------------------------------------

@pytest.mark.parametrize("make_kernel", KERNELS)
@pytest.mark.parametrize("num_shards", [1, 2, 3])
def test_sharded_gram_is_bitwise_equal(make_kernel, num_shards):
    stream = _stream()
    reference = make_kernel().gram(stream.materialize().graphs)
    sharded = sharded_gram(
        make_kernel(), stream, num_shards, FeatureMapCache()
    )
    assert sharded.dtype == reference.dtype
    assert np.array_equal(sharded, reference)  # bitwise, not allclose


def test_sharded_gram_reads_warmed_counts_from_cache():
    stream = _stream()
    kernel = WeisfeilerLehmanKernel(3)
    cache = FeatureMapCache()
    total = sum(
        warm_shard_counts(kernel.extractor, stream, i, 2, cache)
        for i in range(2)
    )
    assert total == len(stream)
    stores_after_warm = cache.stats.stores
    hits_before = cache.stats.hits
    sharded = sharded_gram(kernel, stream, 2, cache)
    # The gram assembly found every shard's counts already cached.
    assert cache.stats.hits > hits_before
    assert cache.stats.stores == stores_after_warm
    reference = kernel.gram(stream.materialize().graphs)
    assert np.array_equal(sharded, reference)
