"""The shared wire layer: envelopes, socket frames, message packing."""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.utils import wire
from repro.utils.wire import (
    MAGIC,
    PRELUDE_SIZE,
    WireError,
    blake2b_hexdigest,
    pack_message,
    recv_frame,
    seal,
    send_frame,
    unpack_message,
    unseal,
)

pytestmark = pytest.mark.dist


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------

def test_seal_unseal_roundtrip():
    for payload in (b"", b"x", b"hello world" * 1000):
        assert unseal(seal(payload)) == payload


def test_unseal_rejects_truncation():
    blob = seal(b"some payload bytes")
    with pytest.raises(WireError, match="truncated"):
        unseal(blob[: PRELUDE_SIZE - 1])
    with pytest.raises(WireError, match="length mismatch"):
        unseal(blob[:-3])


def test_unseal_rejects_corruption():
    blob = bytearray(seal(b"some payload bytes"))
    blob[-1] ^= 0xFF
    with pytest.raises(WireError, match="checksum"):
        unseal(bytes(blob))


def test_unseal_rejects_bad_magic_and_version():
    blob = seal(b"payload")
    with pytest.raises(WireError, match="magic"):
        unseal(b"XXXX" + blob[4:])
    bumped = blob[:4] + bytes([wire.WIRE_VERSION + 1]) + blob[5:]
    with pytest.raises(WireError, match="version"):
        unseal(bumped)


def test_unseal_enforces_size_cap():
    blob = seal(b"x" * 100)
    with pytest.raises(WireError, match="exceeds cap"):
        unseal(blob, max_bytes=10)


def test_shared_damage_corpus_never_unseals_silently():
    """The corpus shared with the serve codec (tests/wire_fuzz.py).

    Torn and garbage frames must raise; a single bit flip must either
    raise or — if it lands somewhere value-preserving — unseal to the
    original payload.  Silent payload corruption is never acceptable.
    """
    from tests.wire_fuzz import bitflipped_frames, garbage_frames, torn_frames

    payload = b"some payload bytes under a shared-corpus fuzz"
    blob = seal(payload)
    for damaged in (*torn_frames(blob), *garbage_frames(blob)):
        with pytest.raises(WireError):
            unseal(damaged)
    for damaged in bitflipped_frames(blob):
        try:
            assert unseal(damaged) == payload
        except WireError:
            pass


def test_blake2b_hexdigest_is_chunking_invariant():
    whole = blake2b_hexdigest([b"abcdef"])
    chunked = blake2b_hexdigest([b"ab", b"cd", b"ef"])
    assert whole == chunked
    assert whole != blake2b_hexdigest([b"abcdeg"])


# ----------------------------------------------------------------------
# Socket framing
# ----------------------------------------------------------------------

def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        for payload in (b"", b"first", b"second" * 4096):
            send_frame(a, payload)
        for payload in (b"", b"first", b"second" * 4096):
            assert recv_frame(b) == payload
        a.close()
        assert recv_frame(b) is None  # clean EOF at a frame boundary
    finally:
        b.close()


def test_recv_frame_raises_on_mid_frame_eof():
    a, b = socket.socketpair()
    try:
        blob = seal(b"a frame that will be cut short")
        a.sendall(blob[:-5])
        a.close()
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_recv_frame_detects_corrupt_payload():
    a, b = socket.socketpair()
    try:
        blob = bytearray(seal(b"payload under test"))
        blob[-2] ^= 0x01
        a.sendall(bytes(blob))
        with pytest.raises(WireError, match="checksum"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_recv_frame_on_timeout_preserves_partial_frame():
    """Ticks must not tear a frame that arrives slower than the poll."""
    a, b = socket.socketpair()
    ticks = []
    payload = b"slow frame payload " * 64
    blob = seal(payload)

    def drip():
        for i in range(0, len(blob), 64):
            threading.Event().wait(0.02)
            a.sendall(blob[i : i + 64])

    sender = threading.Thread(target=drip, daemon=True)
    try:
        b.settimeout(0.005)  # far shorter than the full transfer
        sender.start()
        got = recv_frame(b, on_timeout=lambda: ticks.append(1))
        assert got == payload
        assert ticks  # the callback actually fired mid-frame
    finally:
        sender.join()
        a.close()
        b.close()


def test_recv_frame_without_on_timeout_propagates():
    a, b = socket.socketpair()
    try:
        b.settimeout(0.01)
        with pytest.raises(TimeoutError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# Message packing
# ----------------------------------------------------------------------

def test_pack_unpack_numeric_arrays():
    header = {"op": "test", "n": 3}
    arrays = {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.linspace(0, 1, 5, dtype=np.float32),
    }
    out_header, out_arrays = unpack_message(pack_message(header, arrays))
    assert out_header == header
    assert set(out_arrays) == set(arrays)
    for name, arr in arrays.items():
        got = out_arrays[name]
        assert got.dtype == arr.dtype
        assert got.shape == arr.shape
        np.testing.assert_array_equal(got, arr)


def test_scalars_travel_as_one_element_arrays():
    # np.ascontiguousarray promotes 0-d to 1-d, so a bare scalar lands
    # as a one-element vector on the far side — values intact.
    _, arrays = unpack_message(pack_message({}, {"s": np.float64(2.5)}))
    assert arrays["s"].shape == (1,)
    assert arrays["s"].dtype == np.float64
    assert arrays["s"][0] == 2.5


def test_pack_message_preserves_noncontiguous_views():
    base = np.arange(24, dtype=np.float64).reshape(4, 6)
    view = base[:, ::2]  # non-contiguous
    _, arrays = unpack_message(pack_message({}, {"v": view}))
    np.testing.assert_array_equal(arrays["v"], view)


def test_object_arrays_require_allow_pickle():
    from collections import Counter

    boxed = np.empty(1, dtype=object)
    boxed[0] = [Counter({"a": 1}), Counter({"b": 2})]
    blob = pack_message({"op": "kv"}, {"counts": boxed})
    with pytest.raises(WireError, match="pickle"):
        unpack_message(blob)
    header, arrays = unpack_message(blob, allow_pickle=True)
    assert header == {"op": "kv"}
    assert arrays["counts"][0] == [Counter({"a": 1}), Counter({"b": 2})]


def test_unpack_rejects_trailing_and_truncated_bytes():
    blob = pack_message({"op": "x"}, {"a": np.arange(4)})
    with pytest.raises(WireError, match="trailing"):
        unpack_message(blob + b"extra")
    with pytest.raises(WireError):
        unpack_message(blob[:-3])
    with pytest.raises(WireError):
        unpack_message(b"\x00\x00")


def test_unpack_rejects_inconsistent_manifest():
    # Hand-craft a manifest whose dtype/shape disagree with nbytes.
    import json

    head = json.dumps(
        {
            "header": {},
            "arrays": [
                {
                    "name": "a",
                    "encoding": "raw",
                    "dtype": "<i8",
                    "shape": [100],
                    "nbytes": 8,
                }
            ],
        }
    ).encode()
    blob = struct.pack(">I", len(head)) + head + b"\x00" * 8
    with pytest.raises(WireError, match="inconsistent"):
        unpack_message(blob)


def test_pack_rejects_unjsonable_header():
    with pytest.raises(WireError, match="JSON"):
        pack_message({"bad": object()})


def test_checkpoint_digest_is_reexported_from_wire():
    # The canonical home moved to repro.utils.wire; the historical
    # import site must keep working (and be the same function).
    from repro.resilience.checkpoint import blake2b_hexdigest as from_ckpt

    assert from_ckpt is blake2b_hexdigest
