"""DistWorker lifecycle, the KV ops, and remote-tier cache fallthrough."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import FeatureMapCache, cache_key
from repro.dist import (
    DistWorker,
    RemoteCacheClient,
    WorkerClient,
    WorkerRejected,
)
from repro.dist import protocol

pytestmark = pytest.mark.dist


def test_worker_ping_info_shutdown():
    worker = DistWorker(shard_index=1, num_shards=3, worker_id="w-test")
    host, port = worker.start()
    assert port != 0  # ephemeral port was resolved
    client = WorkerClient(host, port)
    try:
        assert client.ping()["worker_id"] == "w-test"
        info, _ = client.request({"op": protocol.OP_INFO})
        assert info["shard_index"] == 1
        assert info["num_shards"] == 3
        client.shutdown()
        worker._accept_thread.join(timeout=5.0)
        assert worker._stop.is_set()
    finally:
        client.close()
        worker.stop()


def test_worker_rejects_invalid_shard():
    with pytest.raises(ValueError):
        DistWorker(shard_index=2, num_shards=2)


def test_unknown_op_is_rejected_not_fatal(worker_fleet):
    _, [(host, port)] = worker_fleet(1)
    client = WorkerClient(host, port)
    try:
        with pytest.raises(WorkerRejected, match="unknown op"):
            client.request({"op": "no-such-op"})
        # The connection survives a rejection: next request works.
        assert client.ping()["worker_id"] == "shard0"
    finally:
        client.close()


def test_kv_put_get_roundtrip(worker_fleet):
    _, [(host, port)] = worker_fleet(1)
    client = WorkerClient(host, port)
    key = cache_key("counts", "deadbeef", "cafebabe")
    payload = {"a": np.arange(6, dtype=np.float64).reshape(2, 3)}
    try:
        header, _ = client.request(
            {"op": protocol.OP_KV_GET, "key": key, "namespace": "counts"}
        )
        assert header["hit"] is False
        client.request(
            {"op": protocol.OP_KV_PUT, "key": key, "namespace": "counts"},
            payload,
        )
        header, arrays = client.request(
            {"op": protocol.OP_KV_GET, "key": key, "namespace": "counts"},
            allow_pickle=True,
        )
        assert header["hit"] is True
        np.testing.assert_array_equal(arrays["a"], payload["a"])
    finally:
        client.close()


def test_remote_tier_fallthrough_and_backfill(worker_fleet):
    """A local miss fetches from the peer and lands in the local tiers."""
    workers, addresses = worker_fleet(2)
    key = cache_key("counts", "feedface", "0123abcd")
    payload = {"x": np.linspace(0, 1, 7)}
    workers[1].cache.put(key, payload, namespace="counts")

    local = FeatureMapCache(remote=RemoteCacheClient([addresses[1]]))
    got = local.get(key, namespace="counts")
    assert got is not None
    np.testing.assert_array_equal(got["x"], payload["x"])
    assert local.stats.remote_hits == 1
    # Backfilled: the second get answers from memory, no second fetch.
    again = local.get(key, namespace="counts")
    np.testing.assert_array_equal(again["x"], payload["x"])
    assert local.stats.remote_hits == 1
    assert local.stats.memory_hits == 1


def test_kv_get_is_local_only_no_peer_recursion(worker_fleet):
    """Two all-miss workers pointed at each other terminate immediately.

    The KV server answers peer lookups from its local tiers only; if it
    consulted its own remote tier, two empty caches would ping-pong the
    same key forever.
    """
    workers, addresses = worker_fleet(2)
    workers[0].cache.remote = RemoteCacheClient([addresses[1]])
    workers[1].cache.remote = RemoteCacheClient([addresses[0]])
    missing = cache_key("counts", "00000000", "00000000")
    assert workers[0].cache.get(missing, namespace="counts") is None
    assert workers[1].cache.get(missing, namespace="counts") is None


def test_remote_cache_client_skips_dead_peers():
    import socket as socket_mod

    probe = socket_mod.socket()
    probe.bind(("127.0.0.1", 0))
    dead = probe.getsockname()
    probe.close()

    worker = DistWorker()
    address = worker.start()
    key = cache_key("counts", "aabbccdd", "11223344")
    worker.cache.put(key, {"v": np.ones(3)}, namespace="counts")
    try:
        client = RemoteCacheClient([dead, address], timeout_s=0.5)
        got = client.fetch(key, namespace="counts")
        assert got is not None
        np.testing.assert_array_equal(got["v"], np.ones(3))
        assert RemoteCacheClient([dead], timeout_s=0.5).fetch(key) is None
        assert RemoteCacheClient([]).fetch(key) is None
    finally:
        worker.stop()


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_worker_fault_escapes_without_reply(worker_fleet):
    """An injected fault mid-fold kills the connection, not a reply.

    In-process stand-in for process death: raise-mode faults are
    BaseException, escape the worker's ``except Exception`` reply path,
    and the client sees a dead connection (DistError) — the trigger for
    the coordinator's reassignment logic.
    """
    from repro.dist.client import DistError
    from repro.resilience import faults

    _, [(host, port)] = worker_fleet(1)
    client = WorkerClient(host, port, timeout_s=5.0)
    spec = {
        "model": "wl-svm",
        "dataset": {"name": "PTC_MR", "scale": 0.05, "seed": 0},
        "n_splits": 3,
        "seed": 0,
    }
    faults.install("raise@fold:0")
    try:
        with pytest.raises(DistError):
            client.request(
                {
                    "op": protocol.OP_RUN_FOLD,
                    "run_key": "runkey",
                    "run": spec,
                    "fold": 0,
                    "fold_seed": 1,
                },
                {
                    "train_idx": np.arange(4, 12),
                    "test_idx": np.arange(4),
                },
            )
    finally:
        faults.clear()
        client.close()
