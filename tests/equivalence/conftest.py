"""Generators for the differential-equivalence harness.

Every vectorized hot path ships with its original implementation
preserved as a ``_reference_*`` oracle; the strategies here produce the
adversarial graph shapes (disconnected unions, shuffled edge
orientations, label-degenerate graphs, dummy-padded batches) that the
tests feed to both sides before asserting *bitwise* agreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph import Graph, disjoint_union

from tests.conftest import random_graphs

# Every test in this directory belongs to the `equivalence` tier.
def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.equivalence)


@st.composite
def disconnected_graphs(draw, max_components: int = 3, max_nodes: int = 7):
    """Graphs that are explicitly a disjoint union of >= 2 components."""
    k = draw(st.integers(2, max_components))
    parts = [draw(random_graphs(min_nodes=1, max_nodes=max_nodes)) for _ in range(k)]
    return disjoint_union(parts)


@st.composite
def shuffled_edge_graphs(draw, max_nodes: int = 8):
    """Graphs rebuilt from a shuffled, orientation-flipped edge list.

    ``Graph`` canonicalizes edges internally, so the rebuilt graph must be
    structurally identical — this hunts for any code path that depends on
    edge insertion order or (u, v) orientation.
    """
    g = draw(random_graphs(min_nodes=1, max_nodes=max_nodes))
    edges = [tuple(e) for e in g.edges]
    perm = draw(st.permutations(edges)) if edges else []
    flips = draw(st.lists(st.booleans(), min_size=len(edges), max_size=len(edges)))
    shuffled = [(v, u) if f else (u, v) for (u, v), f in zip(perm, flips)]
    return Graph(g.n, shuffled, g.labels.tolist())


@st.composite
def graph_batches(draw, min_graphs: int = 1, max_graphs: int = 5):
    """Small datasets mixing connected and disconnected graphs."""
    k = draw(st.integers(min_graphs, max_graphs))
    out = []
    for _ in range(k):
        if draw(st.booleans()):
            out.append(draw(random_graphs(min_nodes=1, max_nodes=8)))
        else:
            out.append(draw(disconnected_graphs(max_components=2, max_nodes=4)))
    return out


@st.composite
def score_arrays(draw, n: int):
    """Per-vertex score arrays with deliberate ties (small integer grid)."""
    vals = draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n)
    )
    return np.asarray(vals, dtype=np.float64)


def assert_bitwise_equal(a: np.ndarray, b: np.ndarray, context: str = "") -> None:
    """Assert two arrays agree in dtype, shape, and raw bytes."""
    assert a.dtype == b.dtype, f"{context}: dtype {a.dtype} != {b.dtype}"
    assert a.shape == b.shape, f"{context}: shape {a.shape} != {b.shape}"
    assert a.tobytes() == b.tobytes(), f"{context}: payload bytes differ"
