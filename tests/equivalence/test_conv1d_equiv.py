"""Conv1D fast paths vs the preserved gather/add.at oracle, plus
finite-difference gradient checks.

The fast paths (reshape im2col for non-overlapping windows, fancy-index
scatter for disjoint windows) must be *bitwise* identical to the original
implementation in all stride/kernel regimes; the finite-difference checks
then validate the oracle itself against numerical gradients.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.conv1d import (
    Conv1D,
    _reference_conv1d_backward,
    _reference_conv1d_forward,
)

from tests.equivalence.conftest import assert_bitwise_equal

#: (kernel_size, stride) covering the tiling, gapped, and overlapping regimes.
REGIMES = [(5, 5), (1, 1), (3, 5), (4, 2), (2, 3), (3, 1)]


def _layer_and_input(k, s, batch=2, windows=4, cin=3, cout=2, seed=0, use_bias=True):
    rng = np.random.default_rng(seed)
    length = (windows - 1) * s + k
    layer = Conv1D(cin, cout, k, stride=s, use_bias=use_bias, rng=seed)
    x = rng.normal(size=(batch, length, cin))
    return layer, x


class TestBitwiseForward:
    @pytest.mark.parametrize("k,s", REGIMES)
    def test_forward_matches_reference(self, k, s):
        layer, x = _layer_and_input(k, s)
        out = layer.forward(x)
        ref = _reference_conv1d_forward(
            x, layer.weight.value, layer.bias.value, k, s
        )
        assert_bitwise_equal(out, ref, f"k={k} s={s}")

    @settings(max_examples=40)
    @given(
        st.integers(1, 4),  # kernel
        st.integers(1, 4),  # stride
        st.integers(1, 3),  # batch
        st.integers(1, 5),  # windows
        st.integers(1, 4),  # channels
        st.integers(0, 5),  # seed
    )
    def test_forward_matches_reference_fuzzed(self, k, s, batch, windows, cin, seed):
        layer, x = _layer_and_input(k, s, batch=batch, windows=windows, cin=cin, seed=seed)
        ref = _reference_conv1d_forward(x, layer.weight.value, layer.bias.value, k, s)
        assert_bitwise_equal(layer.forward(x), ref)

    def test_forward_without_bias(self):
        layer, x = _layer_and_input(3, 3, use_bias=False)
        ref = _reference_conv1d_forward(x, layer.weight.value, None, 3, 3)
        assert_bitwise_equal(layer.forward(x), ref)

    def test_trailing_remainder_positions(self):
        """Input length not a multiple of the stride grid uses the gather path."""
        layer = Conv1D(2, 2, 3, stride=3, rng=0)
        x = np.random.default_rng(3).normal(size=(2, 11, 2))  # 11 = 3*3 + 2 left over
        ref = _reference_conv1d_forward(x, layer.weight.value, layer.bias.value, 3, 3)
        assert_bitwise_equal(layer.forward(x), ref)


class TestBitwiseBackward:
    @pytest.mark.parametrize("k,s", REGIMES)
    def test_backward_matches_reference(self, k, s):
        layer, x = _layer_and_input(k, s)
        out = layer.forward(x)
        grad = np.random.default_rng(7).normal(size=out.shape)
        dx = layer.backward(grad)
        ref_dx, ref_dw, ref_db = _reference_conv1d_backward(
            x, layer.weight.value, grad, k, s
        )
        assert_bitwise_equal(dx, ref_dx, f"dx k={k} s={s}")
        assert_bitwise_equal(layer.weight.grad, ref_dw, f"dw k={k} s={s}")
        assert_bitwise_equal(layer.bias.grad, ref_db, f"db k={k} s={s}")

    @settings(max_examples=40)
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 3),
        st.integers(1, 4),
        st.integers(0, 5),
    )
    def test_backward_matches_reference_fuzzed(self, k, s, batch, windows, seed):
        layer, x = _layer_and_input(k, s, batch=batch, windows=windows, seed=seed)
        out = layer.forward(x)
        grad = np.random.default_rng(seed + 100).normal(size=out.shape)
        dx = layer.backward(grad)
        ref_dx, ref_dw, ref_db = _reference_conv1d_backward(
            x, layer.weight.value, grad, k, s
        )
        assert_bitwise_equal(dx, ref_dx)
        assert_bitwise_equal(layer.weight.grad, ref_dw)
        assert_bitwise_equal(layer.bias.grad, ref_db)

    def test_gradients_accumulate(self):
        layer, x = _layer_and_input(3, 3)
        out = layer.forward(x)
        grad = np.ones_like(out)
        layer.backward(grad)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(grad)
        np.testing.assert_array_equal(layer.weight.grad, 2 * first)


class TestDummyPaddedBatches:
    """All-zero rows (dummy vertices / sequence padding) must stay inert."""

    def test_zero_windows_give_zero_outputs(self):
        layer, x = _layer_and_input(4, 4, use_bias=False)
        x[:, 4:8, :] = 0.0  # zero out window 1 of every batch element
        out = layer.forward(x)
        assert np.all(out[:, 1, :] == 0.0)

    def test_padded_batch_rows_receive_zero_input_gradient(self):
        layer, x = _layer_and_input(4, 4, use_bias=False)
        x[-1, :, :] = 0.0  # final batch element entirely dummy
        out = layer.forward(x)
        grad = np.zeros_like(out)
        grad[:-1] = 1.0  # loss ignores the dummy element
        dx = layer.backward(grad)
        assert np.all(dx[-1] == 0.0)


class TestFiniteDifference:
    @pytest.mark.parametrize("k,s", [(3, 3), (2, 1), (3, 5)])
    def test_weight_gradient(self, k, s):
        layer, x = _layer_and_input(k, s, batch=2, windows=3, cin=2, cout=2)
        rng = np.random.default_rng(11)
        probe = rng.normal(size=layer.forward(x).shape)

        def loss():
            return float(np.sum(layer.forward(x) * probe))

        layer.forward(x)
        layer.weight.grad[...] = 0.0
        layer.backward(probe)
        analytic = layer.weight.grad.copy()
        eps = 1e-6
        w = layer.weight.value
        numeric = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                orig = w[i, j]
                w[i, j] = orig + eps
                up = loss()
                w[i, j] = orig - eps
                down = loss()
                w[i, j] = orig
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_bias_gradient(self):
        layer, x = _layer_and_input(3, 3)
        rng = np.random.default_rng(12)
        probe = rng.normal(size=layer.forward(x).shape)
        layer.forward(x)
        layer.bias.grad[...] = 0.0
        layer.backward(probe)
        analytic = layer.bias.grad.copy()
        eps = 1e-6
        b = layer.bias.value
        numeric = np.zeros_like(b)
        for j in range(b.shape[0]):
            orig = b[j]
            b[j] = orig + eps
            up = float(np.sum(layer.forward(x) * probe))
            b[j] = orig - eps
            down = float(np.sum(layer.forward(x) * probe))
            b[j] = orig
            numeric[j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    @pytest.mark.parametrize("k,s", [(3, 3), (2, 1), (3, 5)])
    def test_input_gradient(self, k, s):
        layer, x = _layer_and_input(k, s, batch=1, windows=3, cin=2)
        rng = np.random.default_rng(13)
        probe = rng.normal(size=layer.forward(x).shape)
        layer.forward(x)
        analytic = layer.backward(probe)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            orig = x[idx]
            x[idx] = orig + eps
            up = float(np.sum(layer.forward(x) * probe))
            x[idx] = orig - eps
            down = float(np.sum(layer.forward(x) * probe))
            x[idx] = orig
            numeric[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)
