"""One-pass gram assembly vs the preserved per-pair oracles.

Every kernel whose gram matrix was vectorized in the hot-path PR keeps
its original per-pair assembly as an in-module ``_reference_gram``; this
suite pins the equality contract of each:

* **bitwise** for the explicit-feature kernels (GK, SP, WL) — all
  entries are integer-valued counts below 2^53, where float64 dot
  products are exact under any summation order, so the one-GEMM
  ``phi @ phi.T`` cannot drift from per-pair ``np.dot`` calls;
* **bitwise** for WL-OA — the count-matrix histogram intersection
  ``(a + b - |a - b|) / 2`` is integer arithmetic throughout;
* **ulp-bounded (rtol=1e-9)** for RetGK — BLAS reassociates the stacked
  GEMM and ``np.exp`` amplifies last-bit differences, so only closeness
  (plus exact symmetry, which the implementation restores explicitly)
  can be promised.

The WL gram *values* on the pinned dataset are additionally asserted
against the matrices captured before the WL radix remap: gram matrices
depend only on the color partition, so the remap must not move them.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import WLVertexFeatures
from repro.features.vertex_maps import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
)
from repro.graph import Graph
from repro.kernels.base import ExplicitFeatureKernel, validate_gram
from repro.kernels.optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.retgk import ReturnProbabilityKernel

from tests.equivalence.conftest import assert_bitwise_equal, graph_batches

#: Pinned-dataset gram matrices captured BEFORE the WL radix remap.
#: Both depend only on the WL color partition, never the color values.
PRE_REMAP_WL_GRAM_H2 = [[19.0, 7.0, 10.0], [7.0, 18.0, 7.0], [10.0, 7.0, 30.0]]
PRE_REMAP_WLOA_GRAM_H2 = [[15.0, 4.0, 4.0], [4.0, 12.0, 3.0], [4.0, 3.0, 18.0]]


def _pinned_dataset() -> list[Graph]:
    g1 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], [0, 1, 0, 1, 2])
    g2 = Graph(4, [(0, 1), (1, 2), (2, 0), (2, 3)], [1, 1, 0, 2])
    g3 = Graph(6, [(0, 1), (1, 2), (3, 4)], [0, 0, 1, 2, 2, 0])
    return [g1, g2, g3]


def _extractors():
    return [
        GraphletVertexFeatures(),
        ShortestPathVertexFeatures(),
        WLVertexFeatures(h=2),
    ]


class TestExplicitKernels:
    @settings(max_examples=25, deadline=None)
    @given(graph_batches(min_graphs=2), st.integers(0, 2))
    def test_gemm_bitwise_equals_per_pair(self, graphs, ext_idx):
        kernel = ExplicitFeatureKernel(_extractors()[ext_idx])
        assert_bitwise_equal(
            kernel.gram(graphs), kernel._reference_gram(graphs), kernel.name
        )

    def test_gram_entries_are_integral_counts(self):
        """The bitwise argument rests on every entry being an exact
        integer well below 2^53 — assert that premise directly."""
        for extractor in _extractors():
            k = ExplicitFeatureKernel(extractor).gram(_pinned_dataset())
            assert np.array_equal(k, np.round(k))
            assert k.max() < 2**53

    def test_wl_gram_unchanged_by_color_remap(self):
        kernel = ExplicitFeatureKernel(WLVertexFeatures(h=2))
        got = kernel.gram(_pinned_dataset())
        assert got.tolist() == PRE_REMAP_WL_GRAM_H2

    def test_outputs_are_valid_grams(self):
        for extractor in _extractors():
            validate_gram(ExplicitFeatureKernel(extractor).gram(_pinned_dataset()))


class TestWLOptimalAssignment:
    @settings(max_examples=25, deadline=None)
    @given(graph_batches(min_graphs=2), st.integers(0, 3))
    def test_count_matrix_bitwise_equals_counter_oracle(self, graphs, h):
        kernel = WLOptimalAssignmentKernel(h=h)
        assert_bitwise_equal(
            kernel.gram(graphs), kernel._reference_gram(graphs), "wl-oa"
        )

    def test_empty_and_single_vertex_graphs(self):
        graphs = [Graph(0, [], []), Graph(1, [], [5]), *_pinned_dataset()]
        kernel = WLOptimalAssignmentKernel(h=2)
        assert_bitwise_equal(kernel.gram(graphs), kernel._reference_gram(graphs))

    def test_gram_unchanged_by_color_remap(self):
        got = WLOptimalAssignmentKernel(h=2).gram(_pinned_dataset())
        assert got.tolist() == PRE_REMAP_WLOA_GRAM_H2

    def test_empty_dataset(self):
        assert WLOptimalAssignmentKernel(h=1).gram([]).shape == (0, 0)


class TestRetGK:
    @settings(max_examples=15, deadline=None)
    @given(
        graph_batches(min_graphs=2, max_graphs=4),
        st.booleans(),
        st.sampled_from([None, 0.7]),
    )
    def test_stacked_gemm_within_ulp_bound(self, graphs, use_labels, gamma):
        kernel = ReturnProbabilityKernel(steps=4, gamma=gamma, use_labels=use_labels)
        got = kernel.gram(graphs)
        ref = kernel._reference_gram(graphs)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_exactly_symmetric(self):
        got = ReturnProbabilityKernel(steps=6).gram(_pinned_dataset())
        assert got.tobytes() == got.T.copy().tobytes()

    def test_empty_graph_rows_are_zero(self):
        graphs = [Graph(0, [], []), *_pinned_dataset()]
        got = ReturnProbabilityKernel(steps=4).gram(graphs)
        ref = ReturnProbabilityKernel(steps=4)._reference_gram(graphs)
        assert np.all(got[0] == 0.0) and np.all(got[:, 0] == 0.0)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_block_boundaries_do_not_change_values(self):
        """Row-block size is a pure memory knob, never a value knob."""
        graphs = _pinned_dataset() * 3
        kernel = ReturnProbabilityKernel(steps=4)
        baseline = kernel.gram(graphs)
        small = ReturnProbabilityKernel(steps=4)
        small._BLOCK_VERTICES = 5  # forces many blocks
        np.testing.assert_allclose(
            small.gram(graphs), baseline, rtol=1e-9, atol=1e-12
        )
