"""Encoder tensor assembly vs the per-slot reference, end to end.

Also pins the encoder output for a fixed 3-graph dataset to digests
captured across PRs — a cross-session guarantee about which parts of the
encode path are bitwise-stable:

* the SP-feature digests predate both the encoder fusion and the WL
  radix remap and must never change (they prove fusion is a pure
  refactor);
* the WL-feature tensor digest changed exactly once, when the WL colors
  moved from blake2b hex strings to splitmix64 integer codes — the
  vocabulary *keys* embed the raw color values, so the one-hot feature
  columns permuted.  The partition (and hence the vocabulary size, the
  mask, and every gram value) is unchanged; the old digest is kept below
  for the record.
"""

from __future__ import annotations

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import (
    centrality_scores,
    union_vertex_order,
    vertex_sequence,
)
from repro.core.pipeline import (
    DeepMapEncoder,
    _assemble,
    _reference_assemble,
    _reference_encode_stages,
)
from repro.core.receptive_field import (
    all_receptive_fields,
    all_receptive_fields_many,
)
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices
from repro.features.vertex_maps import ShortestPathVertexFeatures
from repro.graph import Graph

from tests.equivalence.conftest import assert_bitwise_equal, graph_batches

#: Encoder output digests for `_pinned_dataset()` with SP features and
#: r=3, captured before the fused-encode PR.  SP features are untouched
#: by the WL remap, so these pins must survive every encoder refactor.
PRE_PR_SP_TENSOR_DIGEST = "ffa1060c3958ab084ad16fe9707e066e"
PRE_PR_SP_VOCAB_SIZE = 17

#: Mask digest (feature-independent) captured at the seed commit.
PRE_PR_MASK_DIGEST = "f1d8f47b9bfaf6028a0ca325c8a61bc8"

#: WL h=2, r=3 tensor digest under the splitmix64 color codes.  The
#: pre-remap (blake2b-color) value was c19a8d10d1f7543d4a1fc843aaf123ac;
#: the change is a documented one-time break (vocabulary keys embed the
#: raw colors), with the partition itself pinned by the unchanged
#: vocabulary size below and by tests/equivalence/test_wl_equiv.py.
WL_TENSOR_DIGEST = "cfc33ee3c268e7c0e64a678209ef98f2"
WL_VOCAB_SIZE = 29


def _pinned_dataset() -> list[Graph]:
    g1 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], [0, 1, 0, 1, 2])
    g2 = Graph(4, [(0, 1), (1, 2), (2, 0), (2, 3)], [1, 1, 0, 2])
    g3 = Graph(6, [(0, 1), (1, 2), (3, 4)], [0, 0, 1, 2, 2, 0])
    return [g1, g2, g3]


def _encode_inputs(graphs, r, w):
    matrices, vocab = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    scores = [centrality_scores(g, "eigenvector") for g in graphs]
    sequences = [
        vertex_sequence(g, s, "eigenvector")[:w] for g, s in zip(graphs, scores)
    ]
    fields = [all_receptive_fields(g, r, s) for g, s in zip(graphs, scores)]
    return matrices, sequences, fields, vocab.size


class TestAssemble:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(1, 5))
    def test_matches_reference(self, graphs, r):
        w = max(g.n for g in graphs)
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got_t, got_m = _assemble(matrices, sequences, fields, w, r, m)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got_t, ref_t, "tensors")
        assert_bitwise_equal(got_m, ref_m, "vertex_mask")

    @settings(max_examples=25)
    @given(graph_batches(min_graphs=2), st.integers(1, 4), st.integers(1, 4))
    def test_dummy_padded_batches_match_reference(self, graphs, r, extra_w):
        """w above the largest graph forces dummy sequence padding."""
        w = max(g.n for g in graphs) + extra_w
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got_t, got_m = _assemble(matrices, sequences, fields, w, r, m)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got_t, ref_t, "tensors")
        assert_bitwise_equal(got_m, ref_m, "vertex_mask")

    @settings(max_examples=25)
    @given(graph_batches(min_graphs=2), st.integers(1, 3))
    def test_truncating_w_matches_reference(self, graphs, r):
        """w below the largest graph keeps only top-centrality vertices."""
        w = max(1, max(g.n for g in graphs) - 1)
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got = _assemble(matrices, sequences, fields, w, r, m)
        ref = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got[0], ref[0])
        assert_bitwise_equal(got[1], ref[1])


class TestFusedStages:
    """The fused union-order path vs the per-graph staged components."""

    @settings(max_examples=40)
    @given(graph_batches())
    def test_union_sequences_match_per_graph(self, graphs):
        scores = [centrality_scores(g, "eigenvector") for g in graphs]
        union = union_vertex_order(graphs, scores)
        for gi, (g, s) in enumerate(zip(graphs, scores)):
            assert_bitwise_equal(
                union.sequence(gi),
                vertex_sequence(g, s, "eigenvector"),
                f"sequence[{gi}]",
            )

    @settings(max_examples=40)
    @given(graph_batches(), st.integers(1, 6))
    def test_receptive_fields_many_match_per_graph(self, graphs, r):
        scores = [centrality_scores(g, "eigenvector") for g in graphs]
        many = all_receptive_fields_many(graphs, r, scores)
        for gi, (g, s) in enumerate(zip(graphs, scores)):
            assert_bitwise_equal(
                many[gi], all_receptive_fields(g, r, s), f"fields[{gi}]"
            )

    def test_single_vertex_and_star_mix(self):
        """Degenerate sizes exercise the flat pair-segment arithmetic."""
        graphs = [
            Graph(1, [], [3]),
            Graph(7, [(0, i) for i in range(1, 7)], [0] * 7),
            Graph(1, [], [3]),
            Graph(2, [(0, 1)], [1, 0]),
        ]
        scores = [centrality_scores(g, "eigenvector") for g in graphs]
        for r in (1, 2, 5):
            many = all_receptive_fields_many(graphs, r, scores)
            for gi, (g, s) in enumerate(zip(graphs, scores)):
                assert_bitwise_equal(many[gi], all_receptive_fields(g, r, s))


class TestEncodeEndToEnd:
    @settings(max_examples=20)
    @given(graph_batches(), st.integers(1, 4))
    def test_encode_equals_reference_composition(self, graphs, r):
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        encoder = DeepMapEncoder(r=r).fit(graphs)
        encoded = encoder.encode(graphs, matrices)
        w, m = encoder.w, matrices[0].shape[1]
        _, sequences, fields, _ = _encode_inputs(graphs, r, w)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(encoded.tensors, ref_t, "tensors")
        assert_bitwise_equal(encoded.vertex_mask, ref_m, "vertex_mask")

    @settings(max_examples=20)
    @given(graph_batches(), st.integers(1, 4), st.integers(0, 3))
    def test_fused_encode_equals_staged_stages(self, graphs, r, extra_w):
        """The full fused path vs the preserved pre-fusion staged body,
        including dummy-padded sequence slots (w above every graph)."""
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        w = max(g.n for g in graphs) + extra_w
        encoder = DeepMapEncoder(r=r, w=w)
        encoded = encoder.encode(graphs, matrices)
        ref_t, ref_m = _reference_encode_stages(
            graphs, matrices, w, r, matrices[0].shape[1]
        )
        assert_bitwise_equal(encoded.tensors, ref_t, "tensors")
        assert_bitwise_equal(encoded.vertex_mask, ref_m, "vertex_mask")

    def test_fused_encode_single_vertex_graphs(self):
        graphs = [Graph(1, [], [0]), Graph(1, [], [1]), Graph(3, [(0, 1)], [0, 1, 1])]
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        encoder = DeepMapEncoder(r=2).fit(graphs)
        encoded = encoder.encode(graphs, matrices)
        ref_t, ref_m = _reference_encode_stages(
            graphs, matrices, encoder.w, 2, matrices[0].shape[1]
        )
        assert_bitwise_equal(encoded.tensors, ref_t)
        assert_bitwise_equal(encoded.vertex_mask, ref_m)

    def test_pinned_sp_digests_unchanged(self):
        """SP-feature encode must match the pre-fusion capture exactly."""
        graphs = _pinned_dataset()
        matrices, vocab = extract_vertex_feature_matrices(
            graphs, ShortestPathVertexFeatures()
        )
        assert vocab.size == PRE_PR_SP_VOCAB_SIZE
        encoded = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices)
        tensor_digest = hashlib.blake2b(
            encoded.tensors.tobytes(), digest_size=16
        ).hexdigest()
        mask_digest = hashlib.blake2b(
            encoded.vertex_mask.tobytes(), digest_size=16
        ).hexdigest()
        assert tensor_digest == PRE_PR_SP_TENSOR_DIGEST
        assert mask_digest == PRE_PR_MASK_DIGEST

    def test_pinned_wl_digests(self):
        """WL-feature encode under the splitmix64 color codes.  The
        vocabulary size equals the pre-remap value — the partition did
        not change, only the color values feeding the vocabulary keys."""
        graphs = _pinned_dataset()
        matrices, vocab = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=2))
        assert vocab.size == WL_VOCAB_SIZE
        encoded = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices)
        tensor_digest = hashlib.blake2b(
            encoded.tensors.tobytes(), digest_size=16
        ).hexdigest()
        mask_digest = hashlib.blake2b(
            encoded.vertex_mask.tobytes(), digest_size=16
        ).hexdigest()
        assert tensor_digest == WL_TENSOR_DIGEST
        assert mask_digest == PRE_PR_MASK_DIGEST

    def test_dummy_rows_are_all_zero(self):
        graphs = _pinned_dataset()
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        encoded = DeepMapEncoder(r=4).fit(graphs).encode(graphs, matrices)
        # Graph 2 has 4 vertices; w is 6, so slots 4..5 are dummy padding.
        w, r = encoded.w, encoded.r
        pad = encoded.tensors[1, 4 * r :]
        assert np.all(pad == 0.0)
        assert encoded.vertex_mask[1].tolist() == [1, 1, 1, 1, 0, 0]
