"""Encoder tensor assembly vs the per-slot reference, end to end.

Also pins the encoder output for a fixed 3-graph dataset to digests
captured *before* the vectorization PR — a cross-session guarantee that
the whole vectorized encode path is bitwise-identical to the original
implementation, independent of the in-repo oracles.
"""

from __future__ import annotations

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import centrality_scores, vertex_sequence
from repro.core.pipeline import DeepMapEncoder, _assemble, _reference_assemble
from repro.core.receptive_field import all_receptive_fields
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices
from repro.graph import Graph

from tests.equivalence.conftest import assert_bitwise_equal, graph_batches

#: Encoder output digests for `_pinned_dataset()` captured at the seed
#: commit (pre-vectorization), with WL h=2 features and r=3.
PRE_PR_TENSOR_DIGEST = "c19a8d10d1f7543d4a1fc843aaf123ac"
PRE_PR_MASK_DIGEST = "f1d8f47b9bfaf6028a0ca325c8a61bc8"


def _pinned_dataset() -> list[Graph]:
    g1 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], [0, 1, 0, 1, 2])
    g2 = Graph(4, [(0, 1), (1, 2), (2, 0), (2, 3)], [1, 1, 0, 2])
    g3 = Graph(6, [(0, 1), (1, 2), (3, 4)], [0, 0, 1, 2, 2, 0])
    return [g1, g2, g3]


def _encode_inputs(graphs, r, w):
    matrices, vocab = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    scores = [centrality_scores(g, "eigenvector") for g in graphs]
    sequences = [
        vertex_sequence(g, s, "eigenvector")[:w] for g, s in zip(graphs, scores)
    ]
    fields = [all_receptive_fields(g, r, s) for g, s in zip(graphs, scores)]
    return matrices, sequences, fields, vocab.size


class TestAssemble:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(1, 5))
    def test_matches_reference(self, graphs, r):
        w = max(g.n for g in graphs)
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got_t, got_m = _assemble(matrices, sequences, fields, w, r, m)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got_t, ref_t, "tensors")
        assert_bitwise_equal(got_m, ref_m, "vertex_mask")

    @settings(max_examples=25)
    @given(graph_batches(min_graphs=2), st.integers(1, 4), st.integers(1, 4))
    def test_dummy_padded_batches_match_reference(self, graphs, r, extra_w):
        """w above the largest graph forces dummy sequence padding."""
        w = max(g.n for g in graphs) + extra_w
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got_t, got_m = _assemble(matrices, sequences, fields, w, r, m)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got_t, ref_t, "tensors")
        assert_bitwise_equal(got_m, ref_m, "vertex_mask")

    @settings(max_examples=25)
    @given(graph_batches(min_graphs=2), st.integers(1, 3))
    def test_truncating_w_matches_reference(self, graphs, r):
        """w below the largest graph keeps only top-centrality vertices."""
        w = max(1, max(g.n for g in graphs) - 1)
        matrices, sequences, fields, m = _encode_inputs(graphs, r, w)
        got = _assemble(matrices, sequences, fields, w, r, m)
        ref = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(got[0], ref[0])
        assert_bitwise_equal(got[1], ref[1])


class TestEncodeEndToEnd:
    @settings(max_examples=20)
    @given(graph_batches(), st.integers(1, 4))
    def test_encode_equals_reference_composition(self, graphs, r):
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        encoder = DeepMapEncoder(r=r).fit(graphs)
        encoded = encoder.encode(graphs, matrices)
        w, m = encoder.w, matrices[0].shape[1]
        _, sequences, fields, _ = _encode_inputs(graphs, r, w)
        ref_t, ref_m = _reference_assemble(matrices, sequences, fields, w, r, m)
        assert_bitwise_equal(encoded.tensors, ref_t, "tensors")
        assert_bitwise_equal(encoded.vertex_mask, ref_m, "vertex_mask")

    def test_pinned_pre_pr_digests(self):
        graphs = _pinned_dataset()
        matrices, vocab = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=2))
        assert vocab.size == 29
        encoded = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices)
        tensor_digest = hashlib.blake2b(
            encoded.tensors.tobytes(), digest_size=16
        ).hexdigest()
        mask_digest = hashlib.blake2b(
            encoded.vertex_mask.tobytes(), digest_size=16
        ).hexdigest()
        assert tensor_digest == PRE_PR_TENSOR_DIGEST
        assert mask_digest == PRE_PR_MASK_DIGEST

    def test_dummy_rows_are_all_zero(self):
        graphs = _pinned_dataset()
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
        encoded = DeepMapEncoder(r=4).fit(graphs).encode(graphs, matrices)
        # Graph 2 has 4 vertices; w is 6, so slots 4..5 are dummy padding.
        w, r = encoded.w, encoded.r
        pad = encoded.tensors[1, 4 * r :]
        assert np.all(pad == 0.0)
        assert encoded.vertex_mask[1].tolist() == [1, 1, 1, 1, 0, 0]
