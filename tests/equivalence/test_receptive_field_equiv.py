"""Vectorized receptive-field assembly vs the per-vertex BFS oracle."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import centrality_scores
from repro.core.receptive_field import (
    DUMMY,
    _reference_all_receptive_fields,
    all_receptive_fields,
    receptive_field,
)
from repro.graph import Graph

from tests.conftest import random_graphs
from tests.equivalence.conftest import (
    assert_bitwise_equal,
    disconnected_graphs,
    score_arrays,
    shuffled_edge_graphs,
)


class TestAllReceptiveFields:
    @settings(max_examples=60)
    @given(random_graphs(max_nodes=10), st.integers(1, 12))
    def test_matches_reference_eigenvector(self, g, r):
        scores = centrality_scores(g, "eigenvector")
        assert_bitwise_equal(
            all_receptive_fields(g, r, scores),
            _reference_all_receptive_fields(g, r, scores),
        )

    @settings(max_examples=40)
    @given(random_graphs(max_nodes=10), st.integers(1, 8))
    def test_matches_reference_degree(self, g, r):
        scores = centrality_scores(g, "degree")
        assert_bitwise_equal(
            all_receptive_fields(g, r, scores),
            _reference_all_receptive_fields(g, r, scores),
        )

    @settings(max_examples=60)
    @given(random_graphs(max_nodes=9), st.integers(1, 10), st.data())
    def test_matches_reference_tied_scores(self, g, r, data):
        """Small-integer scores force heavy ties; tie-breaking must agree."""
        scores = data.draw(score_arrays(g.n))
        assert_bitwise_equal(
            all_receptive_fields(g, r, scores),
            _reference_all_receptive_fields(g, r, scores),
        )

    @given(disconnected_graphs(), st.integers(1, 10))
    def test_disconnected_matches_reference(self, g, r):
        scores = centrality_scores(g, "degree")
        got = all_receptive_fields(g, r, scores)
        assert_bitwise_equal(got, _reference_all_receptive_fields(g, r, scores))

    @given(shuffled_edge_graphs(), st.integers(1, 6))
    def test_edge_order_irrelevant(self, g, r):
        scores = centrality_scores(g, "degree")
        assert_bitwise_equal(
            all_receptive_fields(g, r, scores),
            _reference_all_receptive_fields(g, r, scores),
        )

    def test_empty_graph_gives_empty_table(self):
        assert all_receptive_fields(Graph(0, []), 3, np.empty(0)).shape == (0, 3)


class TestFieldProperties:
    @given(random_graphs(max_nodes=8))
    def test_r1_field_is_the_center(self, g):
        scores = centrality_scores(g, "degree")
        fields = all_receptive_fields(g, 1, scores)
        assert fields.tolist() == [[v] for v in range(g.n)]

    @given(random_graphs(max_nodes=8), st.integers(1, 12))
    def test_center_always_in_field(self, g, r):
        scores = centrality_scores(g, "degree")
        fields = all_receptive_fields(g, r, scores)
        for v in range(g.n):
            assert v in fields[v]

    @given(random_graphs(max_nodes=8))
    def test_oversized_r_pads_with_dummy(self, g):
        r = g.n + 3
        fields = all_receptive_fields(g, r, centrality_scores(g, "degree"))
        assert (fields[:, -3:] == DUMMY).all() or g.n == 0

    @given(random_graphs(max_nodes=8), st.integers(1, 6))
    def test_single_vertex_api_agrees_with_table(self, g, r):
        scores = centrality_scores(g, "degree")
        fields = all_receptive_fields(g, r, scores)
        for v in range(g.n):
            assert_bitwise_equal(receptive_field(g, v, r, scores), fields[v])
