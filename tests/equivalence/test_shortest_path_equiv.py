"""Vectorized APSP + shortest-path feature binning vs the reference oracles."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import ShortestPathVertexFeatures
from repro.features.vertex_maps import _reference_sp_vertex_counts
from repro.graph import Graph, apsp_floyd_warshall
from repro.graph.shortest_paths import _reference_apsp_bfs, apsp_bfs

from tests.conftest import random_graphs
from tests.equivalence.conftest import (
    assert_bitwise_equal,
    disconnected_graphs,
    shuffled_edge_graphs,
)


class TestApsp:
    @given(random_graphs(max_nodes=12))
    def test_matches_reference(self, g):
        assert_bitwise_equal(apsp_bfs(g), _reference_apsp_bfs(g))

    @given(disconnected_graphs())
    def test_matches_reference_disconnected(self, g):
        assert_bitwise_equal(apsp_bfs(g), _reference_apsp_bfs(g))

    @given(random_graphs(max_nodes=10))
    def test_cross_checks_floyd_warshall(self, g):
        assert_bitwise_equal(apsp_bfs(g), apsp_floyd_warshall(g))

    def test_empty_graph(self):
        assert apsp_bfs(Graph(0, [])).shape == (0, 0)


class TestSpFeatures:
    @given(random_graphs(max_nodes=10))
    def test_unbounded_matches_reference(self, g):
        got = ShortestPathVertexFeatures().extract([g])[0]
        assert got == _reference_sp_vertex_counts(g, None)

    @settings(max_examples=50)
    @given(random_graphs(max_nodes=10), st.integers(1, 4))
    def test_max_distance_matches_reference(self, g, md):
        got = ShortestPathVertexFeatures(max_distance=md).extract([g])[0]
        assert got == _reference_sp_vertex_counts(g, md)

    @given(disconnected_graphs())
    def test_disconnected_matches_reference(self, g):
        got = ShortestPathVertexFeatures().extract([g])[0]
        assert got == _reference_sp_vertex_counts(g, None)

    @given(shuffled_edge_graphs())
    def test_edge_order_irrelevant(self, g):
        got = ShortestPathVertexFeatures().extract([g])[0]
        assert got == _reference_sp_vertex_counts(g, None)

    def test_edgeless_graph_gives_empty_counters(self):
        g = Graph(4, [], [0, 1, 2, 0])
        assert ShortestPathVertexFeatures().extract([g])[0] == [Counter()] * 4

    def test_single_vertex(self):
        g = Graph(1, [], [5])
        assert ShortestPathVertexFeatures().extract([g])[0] == [Counter()]

    def test_key_shape_and_counts_on_path(self):
        # 0-1-2 with labels 0,1,0: vertex 0 sees (l0, l1, d1) and (l0, l0, d2).
        g = Graph(3, [(0, 1), (1, 2)], [0, 1, 0])
        counts = ShortestPathVertexFeatures().extract([g])[0]
        assert counts[0] == Counter({("sp", 0, 1, 1): 1, ("sp", 0, 0, 2): 1})
        assert counts[1] == Counter({("sp", 1, 0, 1): 2})
