"""Streamed-vs-materialized bitwise equivalence.

The streaming pipeline's contract is *bitwise* identity with the
materialized one — same tensors, same label order, same shuffle streams,
same cache keys — for every scale factor, dataset seed, shard size
(including single-graph shards), worker count, and graph shape
(including dummy-padded graphs smaller than the alignment width).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import deepmap_wl
from repro.core.pipeline import DeepMapEncoder
from repro.datasets import DatasetSpec, StreamingGraphDataset, make_dataset
from repro.features.vertex_maps import cached_vertex_counts
from repro.features.vocabulary import FeatureVocabulary
from repro.graph import Graph
from repro.parallel import WORKERS_ENV
from repro.stream import EncodedShardStore, StreamEncodedInputs, make_spool_cache

from tests.equivalence.conftest import assert_bitwise_equal, graph_batches
from tests.stream.conftest import model_fingerprint

pytestmark = pytest.mark.stream

FIT_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_model(seed: int = 0):
    # Small hyperparameters keep each hypothesis example cheap; parity
    # is structural, not scale-dependent.
    return deepmap_wl(h=1, r=2, epochs=2, seed=seed)


def fit_both(scale, data_seed, model_seed, shard_size):
    eager = make_dataset("MUTAG", scale=scale, seed=data_seed)
    stream = make_dataset("MUTAG", scale=scale, seed=data_seed, stream=True)
    materialized = fresh_model(model_seed).fit(eager.graphs, eager.y)
    streamed = fresh_model(model_seed)
    streamed.fit_stream(stream, shard_size=shard_size)
    return eager, materialized, streamed


@FIT_SETTINGS
@given(
    scale=st.sampled_from([0.01, 0.02, 0.03]),
    data_seed=st.integers(0, 4),
    model_seed=st.integers(0, 3),
    shard_size=st.sampled_from([1, 3, 5, 10_000]),
)
def test_streamed_fit_is_bitwise_equal(scale, data_seed, model_seed, shard_size):
    # model_seed drives both network init and the trainer's shuffle
    # stream; shard_size=1 exercises single-graph shards and 10_000 the
    # one-shard (> n) case.
    eager, materialized, streamed = fit_both(
        scale, data_seed, model_seed, shard_size
    )
    assert model_fingerprint(streamed) == model_fingerprint(materialized)
    assert streamed.encoder_.w == materialized.encoder_.w
    assert streamed.vocabulary_.size == materialized.vocabulary_.size
    assert_bitwise_equal(
        streamed.classes_, materialized.classes_, "class order"
    )
    assert_bitwise_equal(
        streamed.predict(eager.graphs),
        materialized.predict(eager.graphs),
        "predictions",
    )


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_streamed_fit_parity_holds_for_any_worker_count(workers, monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, str(workers))
    _, materialized, streamed = fit_both(0.02, 0, 0, shard_size=4)
    assert model_fingerprint(streamed) == model_fingerprint(materialized)


def test_streamed_labels_preserve_order():
    eager = make_dataset("SYNTHIE", scale=0.03, seed=2)
    stream = make_dataset("SYNTHIE", scale=0.03, seed=2, stream=True)
    assert_bitwise_equal(stream.labels(), eager.y, "label order")
    shard_ys = [s.y for s in stream.iter_shards(3)]
    assert_bitwise_equal(np.concatenate(shard_ys), eager.y, "sharded labels")


# ---------------------------------------------------------------------------
# Arbitrary graph shapes: single-graph shards + dummy-padded graphs.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _ListGenerator:
    """Deterministic generator replaying a fixed tuple of graphs.

    With ``num_classes == len(graphs)``, graph ``i`` is class ``i`` and
    the registry's ``sample_graph`` maps index -> class -> this tuple.
    """

    graphs: tuple

    def sample(self, cls: int, rng) -> Graph:
        return self.graphs[cls]


def stream_of(graphs) -> StreamingGraphDataset:
    spec = DatasetSpec(
        name="hypo",
        num_classes=len(graphs),
        has_vertex_labels=True,
        generator=_ListGenerator(tuple(graphs)),
    )
    return StreamingGraphDataset(
        name="hypo", spec=spec, seeds=np.arange(len(graphs), dtype=np.int64)
    )


@settings(max_examples=20, deadline=None)
@given(graphs=graph_batches(min_graphs=1, max_graphs=5), shard_size=st.integers(1, 6))
def test_sharded_encode_equals_full_encode(graphs, shard_size):
    # Pad-heavy batches: append an isolated vertex so at least one graph
    # sits far below the alignment width w = max |V|.
    graphs = list(graphs) + [Graph(1, [], [0])]
    model = fresh_model()
    counts = cached_vertex_counts(model.extractor, graphs)
    totals: dict = {}
    for vertex_counts in counts:
        for counter in vertex_counts:
            for key, value in counter.items():
                totals[key] = totals.get(key, 0) + value
    vocab = FeatureVocabulary()
    vocab.add_all(totals.keys())
    vocab = vocab.freeze()
    encoder = DeepMapEncoder(r=model.r, ordering=model.ordering).fit_width(
        [max(g.n for g in graphs)]
    )
    matrices = [vocab.vectorize_rows(vc) for vc in counts]
    full = encoder.encode(graphs, matrices).tensors

    cache, spool = make_spool_cache()
    with spool:
        store = EncodedShardStore(
            stream_of(graphs), model.extractor, vocab, encoder,
            shard_size, cache=cache,
        )
        store.warm()
        inputs = StreamEncodedInputs(store)
        assert inputs.shape == full.shape
        idx = np.arange(len(graphs) - 1, -1, -1, dtype=np.int64)  # reversed
        assert_bitwise_equal(inputs.take_rows(idx), full[idx], "gathered rows")
        assert_bitwise_equal(
            inputs.take_rows(np.arange(len(graphs), dtype=np.int64)),
            full,
            "in-order rows",
        )


def test_streamed_cache_keys_match_materialized_shard_keys():
    # The content-addressed key scheme is unchanged: the key the store
    # records for a shard is exactly the key the materialized encoder
    # computes for the same slice of graphs.
    eager = make_dataset("MUTAG", scale=0.02, seed=0)
    stream = make_dataset("MUTAG", scale=0.02, seed=0, stream=True)
    model = fresh_model()
    counts = cached_vertex_counts(model.extractor, eager.graphs)
    totals: dict = {}
    for vertex_counts in counts:
        for counter in vertex_counts:
            for key, value in counter.items():
                totals[key] = totals.get(key, 0) + value
    vocab = FeatureVocabulary()
    vocab.add_all(totals.keys())
    vocab = vocab.freeze()
    encoder = DeepMapEncoder(r=model.r, ordering=model.ordering).fit_width(
        [max(g.n for g in eager.graphs)]
    )
    matrices = [vocab.vectorize_rows(vc) for vc in counts]
    shard_size = 4
    cache, spool = make_spool_cache()
    with spool:
        store = EncodedShardStore(
            stream, model.extractor, vocab, encoder, shard_size, cache=cache
        )
        store.warm()
        for s in range(store.num_shards):
            start = s * shard_size
            stop = min(start + shard_size, len(eager.graphs))
            assert store._keys[s] == encoder.encode_key(
                eager.graphs[start:stop], matrices[start:stop]
            )
