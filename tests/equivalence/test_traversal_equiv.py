"""Vectorized BFS vs the queue-based reference oracles — bitwise."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, path_graph, star_graph
from repro.graph.traversal import (
    _reference_bfs_distances,
    _reference_bfs_layers,
    bfs_distances,
    bfs_distances_batch,
    bfs_layers,
    bfs_order,
)

from tests.conftest import random_graphs
from tests.equivalence.conftest import (
    assert_bitwise_equal,
    disconnected_graphs,
    shuffled_edge_graphs,
)


class TestSingleSource:
    @given(random_graphs(max_nodes=12))
    def test_distances_match_reference_all_sources(self, g):
        for s in range(g.n):
            assert_bitwise_equal(
                bfs_distances(g, s), _reference_bfs_distances(g, s), f"src={s}"
            )

    @given(random_graphs(max_nodes=12))
    def test_layers_match_reference_all_sources(self, g):
        for s in range(g.n):
            assert list(bfs_layers(g, s)) == list(_reference_bfs_layers(g, s))

    @given(disconnected_graphs())
    def test_disconnected_distances_match_reference(self, g):
        for s in range(g.n):
            got = bfs_distances(g, s)
            assert_bitwise_equal(got, _reference_bfs_distances(g, s))
            assert (got == -1).any()  # another component is unreachable

    @given(shuffled_edge_graphs())
    def test_edge_order_and_orientation_irrelevant(self, g):
        for s in range(g.n):
            assert_bitwise_equal(bfs_distances(g, s), _reference_bfs_distances(g, s))

    @given(random_graphs(max_nodes=10))
    def test_bfs_order_visits_component_once(self, g):
        order = bfs_order(g, 0)
        assert order[0] == 0
        assert len(order) == len(set(order))
        assert set(order) == {v for v in range(g.n) if bfs_distances(g, 0)[v] >= 0}

    def test_out_of_range_source_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            bfs_distances(g, 3)
        with pytest.raises(ValueError):
            list(bfs_layers(g, -1))


class TestBatch:
    @given(random_graphs(max_nodes=12))
    def test_batch_matches_reference_stack(self, g):
        expected = np.stack([_reference_bfs_distances(g, s) for s in range(g.n)])
        assert_bitwise_equal(bfs_distances_batch(g), expected)

    @given(disconnected_graphs())
    def test_batch_disconnected(self, g):
        expected = np.stack([_reference_bfs_distances(g, s) for s in range(g.n)])
        assert_bitwise_equal(bfs_distances_batch(g), expected)

    @given(random_graphs(min_nodes=2, max_nodes=10), st.data())
    def test_batch_source_subset(self, g, data):
        sources = data.draw(
            st.lists(st.integers(0, g.n - 1), min_size=1, max_size=g.n, unique=True)
        )
        expected = np.stack([_reference_bfs_distances(g, s) for s in sources])
        assert_bitwise_equal(bfs_distances_batch(g, np.array(sources)), expected)

    @settings(max_examples=25)
    @given(random_graphs(max_nodes=10))
    def test_sparse_fallback_matches_dense(self, g):
        import repro.graph.traversal as tr

        dense = bfs_distances_batch(g)
        saved = tr._DENSE_BATCH_MAX_N
        try:
            tr._DENSE_BATCH_MAX_N = 0  # force the per-source CSR fallback
            assert_bitwise_equal(tr.bfs_distances_batch(g), dense)
        finally:
            tr._DENSE_BATCH_MAX_N = saved

    def test_empty_graph(self):
        g = Graph(0, [])
        assert bfs_distances_batch(g).shape == (0, 0)

    def test_out_of_range_sources_raise(self):
        g = star_graph(4)
        with pytest.raises(ValueError):
            bfs_distances_batch(g, np.array([0, 99]))

    def test_known_star_distances(self):
        g = star_graph(5)  # center 0, leaves 1..4
        d = bfs_distances_batch(g)
        assert d[0].tolist() == [0, 1, 1, 1, 1]
        assert d[1].tolist() == [1, 0, 2, 2, 2]
