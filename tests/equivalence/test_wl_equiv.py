"""Radix-remapped WL refinement vs the per-vertex blake2b reference oracle.

The vectorized path now produces content-stable splitmix64 codes instead
of blake2b hex digests, so the contract against the preserved
``_reference_wl_stable_colors`` oracle is **partition equality**, not
value equality: at every iteration the two colorings must induce the
same grouping of vertices — within a graph AND jointly across graphs
(cross-graph color identity is what aligns subtree patterns in the
vocabulary).  Everything downstream that consumes only the partition
(feature-map counts, explicit WL grams, the WL-OA kernel) is therefore
bitwise-unchanged; the raw color *values* changed once, intentionally,
in the PR that introduced the remap (goldens were regenerated under
``REPRO_GOLDEN_BREAK_OK=1``).

Properties that remain exact (not just partition-level):

* iteration 0 is the raw integer labels,
* codes are pure functions of the rooted subtree signature — batching,
  batch composition, and the batch's maximum degree cannot change them.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import WLVertexFeatures
from repro.features.vertex_maps import (
    _reference_wl_stable_colors,
    wl_stable_colors,
    wl_stable_colors_many,
)
from repro.graph import Graph

from tests.conftest import random_graphs
from tests.equivalence.conftest import (
    disconnected_graphs,
    graph_batches,
    shuffled_edge_graphs,
)


def _same_partition(a: list, b: list) -> bool:
    """True iff colorings ``a`` and ``b`` group positions identically.

    Checked as a bijection between color values: equal positions in one
    coloring must be equal in the other, in both directions.
    """
    assert len(a) == len(b)
    fwd: dict = {}
    bwd: dict = {}
    for x, y in zip(a, b):
        if fwd.setdefault(x, y) != y:
            return False
        if bwd.setdefault(y, x) != x:
            return False
    return True


def assert_partition_equal(got: list[list[list[int]]], graphs, h: int) -> None:
    """Joint (cross-graph) partition equality vs the blake2b oracle."""
    ref = [_reference_wl_stable_colors(g, h) for g in graphs]
    for it in range(h + 1):
        joint_got = [c for table in got for c in table[it]]
        joint_ref = [c for table in ref for c in table[it]]
        assert _same_partition(joint_got, joint_ref), f"iteration {it}"


@st.composite
def label_tied_graphs(draw, max_nodes: int = 8):
    """Graphs whose labels are all identical — WL must refine on
    structure alone, the worst case for signature collisions."""
    g = draw(random_graphs(min_nodes=1, max_nodes=max_nodes))
    return Graph(g.n, [tuple(e) for e in g.edges], [0] * g.n)


class TestStableColors:
    @settings(max_examples=60)
    @given(random_graphs(max_nodes=10), st.integers(0, 4))
    def test_partition_matches_reference(self, g, h):
        assert_partition_equal([wl_stable_colors(g, h)], [g], h)

    @given(disconnected_graphs(), st.integers(0, 3))
    def test_disconnected_partition_matches_reference(self, g, h):
        assert_partition_equal([wl_stable_colors(g, h)], [g], h)

    @given(shuffled_edge_graphs(), st.integers(0, 3))
    def test_edge_order_irrelevant(self, g, h):
        assert_partition_equal([wl_stable_colors(g, h)], [g], h)

    @given(label_tied_graphs(), st.integers(0, 4))
    def test_label_tied_partition_matches_reference(self, g, h):
        assert_partition_equal([wl_stable_colors(g, h)], [g], h)

    @given(random_graphs(max_nodes=8))
    def test_iteration_zero_is_raw_labels(self, g):
        assert wl_stable_colors(g, 0) == [[int(l) for l in g.labels]]

    @given(random_graphs(max_nodes=8), st.integers(0, 3))
    def test_colors_are_plain_python_ints(self, g, h):
        for iteration in wl_stable_colors(g, h):
            assert all(type(c) is int for c in iteration)

    def test_empty_graph(self):
        g = Graph(0, [])
        assert wl_stable_colors(g, 2) == [[], [], []]


class TestBatched:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(0, 3))
    def test_joint_partition_matches_reference(self, graphs, h):
        """The partition must agree *jointly* across the whole batch —
        per-graph agreement alone would not guarantee that identical
        subtrees in different graphs share a color."""
        assert_partition_equal(wl_stable_colors_many(graphs, h), graphs, h)

    @settings(max_examples=40)
    @given(graph_batches(min_graphs=2, max_graphs=4), st.integers(0, 2))
    def test_batching_cannot_couple_graphs(self, graphs, h):
        """Codes are content-stable: identical whether batched or alone."""
        batched = wl_stable_colors_many(graphs, h)
        solo = [wl_stable_colors_many([g], h)[0] for g in graphs]
        assert batched == solo

    def test_identical_subtrees_share_colors_across_graphs(self):
        path = Graph(3, [(0, 1), (1, 2)], [0, 1, 0])
        clone = Graph(3, [(1, 2), (0, 1)], [0, 1, 0])
        a, b = wl_stable_colors_many([path, clone], 2)
        assert a == b

    def test_codes_independent_of_batch_max_degree(self):
        """The signature sponge must not absorb padding columns: a
        path's codes cannot change because a high-degree star joined
        the batch and widened the sorted-neighbor layout."""
        path = Graph(3, [(0, 1), (1, 2)], [0, 0, 0])
        star = Graph(7, [(0, i) for i in range(1, 7)], [0] * 7)
        alone = wl_stable_colors_many([path], 3)[0]
        with_star = wl_stable_colors_many([star, path], 3)[1]
        assert alone == with_star


class TestExtractor:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(0, 3))
    def test_extract_matches_color_table_construction(self, graphs, h):
        """Extractor counters are exactly the ('wl', it, color) singles
        of the batched color tables (values match the new code scheme;
        the partition itself is pinned against the oracle above)."""
        got = WLVertexFeatures(h=h).extract(graphs)
        tables = wl_stable_colors_many(graphs, h)
        expected = []
        for g, colorings in zip(graphs, tables):
            per_vertex = []
            for v in range(g.n):
                counter: Counter = Counter()
                for it in range(h + 1):
                    counter[("wl", it, colorings[it][v])] += 1
                per_vertex.append(counter)
            expected.append(per_vertex)
        assert got == expected

    @given(random_graphs(max_nodes=8))
    def test_every_vertex_counts_once_per_iteration(self, g):
        h = 2
        for counter in WLVertexFeatures(h=h).extract([g])[0]:
            assert sum(counter.values()) == h + 1
            assert set(counter.values()) == {1}
