"""Batched array-based WL refinement vs the per-vertex reference oracle.

The WL colors are blake2b hashes of exact signature reprs, so the
vectorized path must reproduce them *identically* — golden fixtures,
vocabulary keys, and the optimal-assignment kernel all consume the raw
hash values.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import WLVertexFeatures
from repro.features.vertex_maps import (
    _reference_wl_stable_colors,
    wl_stable_colors,
    wl_stable_colors_many,
)
from repro.graph import Graph

from tests.conftest import random_graphs
from tests.equivalence.conftest import (
    disconnected_graphs,
    graph_batches,
    shuffled_edge_graphs,
)


class TestStableColors:
    @settings(max_examples=60)
    @given(random_graphs(max_nodes=10), st.integers(0, 4))
    def test_matches_reference(self, g, h):
        assert wl_stable_colors(g, h) == _reference_wl_stable_colors(g, h)

    @given(disconnected_graphs(), st.integers(0, 3))
    def test_disconnected_matches_reference(self, g, h):
        assert wl_stable_colors(g, h) == _reference_wl_stable_colors(g, h)

    @given(shuffled_edge_graphs(), st.integers(0, 3))
    def test_edge_order_irrelevant(self, g, h):
        assert wl_stable_colors(g, h) == _reference_wl_stable_colors(g, h)

    @given(random_graphs(max_nodes=8))
    def test_iteration_zero_is_raw_labels(self, g):
        assert wl_stable_colors(g, 0) == [[int(l) for l in g.labels]]

    @given(random_graphs(max_nodes=8), st.integers(0, 3))
    def test_colors_are_plain_python_ints(self, g, h):
        for iteration in wl_stable_colors(g, h):
            assert all(type(c) is int for c in iteration)

    def test_empty_graph(self):
        g = Graph(0, [])
        assert wl_stable_colors(g, 2) == [[], [], []]


class TestBatched:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(0, 3))
    def test_many_equals_per_graph_reference(self, graphs, h):
        got = wl_stable_colors_many(graphs, h)
        assert got == [_reference_wl_stable_colors(g, h) for g in graphs]

    @settings(max_examples=40)
    @given(graph_batches(min_graphs=2, max_graphs=4), st.integers(0, 2))
    def test_batching_cannot_couple_graphs(self, graphs, h):
        """Colors of a graph are identical whether batched or alone."""
        batched = wl_stable_colors_many(graphs, h)
        solo = [wl_stable_colors_many([g], h)[0] for g in graphs]
        assert batched == solo

    def test_identical_subtrees_share_colors_across_graphs(self):
        path = Graph(3, [(0, 1), (1, 2)], [0, 1, 0])
        clone = Graph(3, [(1, 2), (0, 1)], [0, 1, 0])
        a, b = wl_stable_colors_many([path, clone], 2)
        assert a == b


class TestExtractor:
    @settings(max_examples=40)
    @given(graph_batches(), st.integers(0, 3))
    def test_extract_matches_reference_construction(self, graphs, h):
        got = WLVertexFeatures(h=h).extract(graphs)
        expected = []
        for g in graphs:
            colorings = _reference_wl_stable_colors(g, h)
            per_vertex = []
            for v in range(g.n):
                counter: Counter = Counter()
                for it in range(h + 1):
                    counter[("wl", it, colorings[it][v])] += 1
                per_vertex.append(counter)
            expected.append(per_vertex)
        assert got == expected

    @given(random_graphs(max_nodes=8))
    def test_every_vertex_counts_once_per_iteration(self, g):
        h = 2
        for counter in WLVertexFeatures(h=h).extract([g])[0]:
            assert sum(counter.values()) == h + 1
            assert set(counter.values()) == {1}
