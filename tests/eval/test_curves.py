"""Tests for learning-curve and sweep utilities."""

import numpy as np
import pytest

from repro.core import deepmap_wl
from repro.datasets import GraphDataset
from repro.eval import parameter_sweep, training_curves
from repro.graph import ensure_connected, erdos_renyi


@pytest.fixture(scope="module")
def tiny_dataset():
    rng = np.random.default_rng(1)
    graphs, labels = [], []
    for i in range(16):
        p = 0.25 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(8, p, rng), rng)
        g = g.with_labels((np.arange(8) % 2).tolist())
        graphs.append(g)
        labels.append(i % 2)
    return GraphDataset(name="tiny", graphs=graphs, y=np.array(labels))


class TestTrainingCurves:
    def test_curves_have_epoch_length(self, tiny_dataset):
        curves = training_curves(
            {
                "wl-a": lambda: deepmap_wl(h=1, r=2, epochs=4, seed=0),
                "wl-b": lambda: deepmap_wl(h=1, r=3, epochs=4, seed=1),
            },
            tiny_dataset,
        )
        assert set(curves) == {"wl-a", "wl-b"}
        assert all(len(c) == 4 for c in curves.values())

    def test_accuracies_in_unit_interval(self, tiny_dataset):
        curves = training_curves(
            {"m": lambda: deepmap_wl(h=1, r=2, epochs=3, seed=0)}, tiny_dataset
        )
        assert all(0.0 <= a <= 1.0 for a in curves["m"])


class TestParameterSweep:
    def test_sweep_covers_values(self, tiny_dataset):
        results = parameter_sweep(
            lambda fold, r: deepmap_wl(h=1, r=r, epochs=3, seed=fold),
            "r",
            [1, 2, 3],
            tiny_dataset,
            n_splits=2,
            seed=0,
        )
        assert list(results) == [1, 2, 3]
        for res in results.values():
            assert len(res.fold_accuracies) == 2

    def test_result_names_carry_parameter(self, tiny_dataset):
        results = parameter_sweep(
            lambda fold, r: deepmap_wl(h=1, r=r, epochs=2, seed=fold),
            "r",
            [2],
            tiny_dataset,
            n_splits=2,
        )
        assert results[2].name == "r=2"
