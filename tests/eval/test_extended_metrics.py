"""Tests for precision/recall/F1, the report, and McNemar's test."""

import numpy as np
import pytest

from repro.eval import classification_report, mcnemar_test, precision_recall_f1


class TestPrecisionRecallF1:
    def test_perfect(self):
        scores = precision_recall_f1([0, 1, 0, 1], [0, 1, 0, 1])
        assert scores[0] == (1.0, 1.0, 1.0)
        assert scores[1] == (1.0, 1.0, 1.0)

    def test_known_values(self):
        # class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 0, 1]
        scores = precision_recall_f1(y_true, y_pred)
        assert scores[0] == (0.5, 0.5, 0.5)

    def test_never_predicted_class(self):
        scores = precision_recall_f1([0, 1], [0, 0])
        p, r, f1 = scores[1]
        assert p == 0.0 and r == 0.0 and f1 == 0.0

    def test_multiclass(self):
        scores = precision_recall_f1([0, 1, 2, 2], [0, 1, 2, 1])
        assert set(scores) == {0, 1, 2}
        assert scores[2][1] == 0.5  # recall of class 2


class TestClassificationReport:
    def test_contains_all_classes(self):
        report = classification_report([0, 1, 2], [0, 1, 2])
        for token in ("0", "1", "2", "accuracy: 1.000"):
            assert token in report


class TestMcNemar:
    def test_identical_models(self):
        y = np.array([0, 1] * 10)
        stat, p = mcnemar_test(y, y, y)
        assert stat == 0.0 and p == 1.0

    def test_clearly_different_models(self):
        y = np.zeros(60, dtype=int)
        perfect = np.zeros(60, dtype=int)
        bad = np.ones(60, dtype=int)  # always wrong
        stat, p = mcnemar_test(y, perfect, bad)
        assert p < 0.001

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 40)
        a = rng.integers(0, 2, 40)
        b = rng.integers(0, 2, 40)
        stat_ab, p_ab = mcnemar_test(y, a, b)
        stat_ba, p_ba = mcnemar_test(y, b, a)
        assert stat_ab == stat_ba and p_ab == p_ba

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mcnemar_test([0, 1], [0], [0, 1])

    def test_p_value_in_unit_interval(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 3, 50)
        a = rng.integers(0, 3, 50)
        b = rng.integers(0, 3, 50)
        _, p = mcnemar_test(y, a, b)
        assert 0.0 <= p <= 1.0
