"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.eval import accuracy, confusion_matrix, mean_std


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])


class TestConfusionMatrix:
    def test_diagonal_on_perfect(self):
        classes, mat = confusion_matrix([0, 1, 1], [0, 1, 1])
        assert classes.tolist() == [0, 1]
        assert mat.tolist() == [[1, 0], [0, 2]]

    def test_off_diagonal(self):
        _, mat = confusion_matrix([0, 0], [1, 1])
        assert mat[0, 1] == 2

    def test_handles_unseen_predictions(self):
        classes, mat = confusion_matrix([0, 0], [0, 2])
        assert classes.tolist() == [0, 2]
        assert mat.sum() == 2


class TestMeanStd:
    def test_values(self):
        m, s = mean_std([1.0, 2.0, 3.0])
        assert np.isclose(m, 2.0)
        assert np.isclose(s, np.sqrt(2 / 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])
