"""Tests for the paper's CV protocols."""

import numpy as np
import pytest

from repro.core import deepmap_wl
from repro.datasets import GraphDataset
from repro.eval import CVResult, evaluate_kernel_svm, evaluate_neural_model
from repro.graph import ensure_connected, erdos_renyi
from repro.kernels import WeisfeilerLehmanKernel


@pytest.fixture(scope="module")
def toy_dataset():
    rng = np.random.default_rng(0)
    graphs, labels = [], []
    for i in range(30):
        p = 0.2 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(9, p, rng), rng)
        g = g.with_labels((np.arange(9) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    return GraphDataset(name="toy", graphs=graphs, y=np.array(labels))


class TestCVResult:
    def test_formatting(self):
        r = CVResult(name="wl", fold_accuracies=[0.5, 0.6, 0.7])
        assert r.formatted() == "60.00+-8.16"

    def test_mean_std(self):
        r = CVResult(name="x", fold_accuracies=[1.0, 0.0])
        assert r.mean == 0.5
        assert r.std == 0.5


class TestKernelProtocol:
    def test_learns_toy(self, toy_dataset):
        res = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), toy_dataset, n_splits=3, seed=0
        )
        assert res.mean > 0.7
        assert len(res.fold_accuracies) == 3

    def test_records_selected_c(self, toy_dataset):
        res = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), toy_dataset, n_splits=3, seed=0
        )
        assert len(res.extra["selected_c"]) == 3

    def test_deterministic(self, toy_dataset):
        a = evaluate_kernel_svm(WeisfeilerLehmanKernel(2), toy_dataset, 3, seed=1)
        b = evaluate_kernel_svm(WeisfeilerLehmanKernel(2), toy_dataset, 3, seed=1)
        assert a.fold_accuracies == b.fold_accuracies


class TestNeuralProtocol:
    def test_epoch_selection(self, toy_dataset):
        res = evaluate_neural_model(
            lambda fold: deepmap_wl(h=1, r=2, epochs=6, seed=fold),
            toy_dataset,
            n_splits=3,
            seed=0,
            name="deepmap-wl",
        )
        assert res.best_epoch is not None
        assert 0 <= res.best_epoch < 6
        assert len(res.fold_accuracies) == 3
        assert len(res.extra["mean_curve"]) == 6

    def test_accuracy_above_chance(self, toy_dataset):
        res = evaluate_neural_model(
            lambda fold: deepmap_wl(h=2, r=3, epochs=12, seed=fold),
            toy_dataset,
            n_splits=3,
            seed=0,
        )
        assert res.mean > 0.7


class TestResultExtras:
    """CVResult.extra carries per-fold wall time and epoch curves."""

    def test_kernel_fold_seconds(self, toy_dataset):
        res = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), toy_dataset, n_splits=3, seed=0
        )
        seconds = res.extra["fold_seconds"]
        assert len(seconds) == 3
        assert all(s >= 0.0 for s in seconds)

    def test_neural_fold_seconds_and_curves(self, toy_dataset):
        res = evaluate_neural_model(
            lambda fold: deepmap_wl(h=1, r=2, epochs=4, seed=fold),
            toy_dataset,
            n_splits=3,
            seed=0,
            name="deepmap-wl",
        )
        assert len(res.extra["fold_seconds"]) == 3
        assert all(s > 0.0 for s in res.extra["fold_seconds"])
        curves = res.extra["fold_val_curves"]
        assert len(curves) == 3
        assert all(len(c) == 4 for c in curves)
        # The reported fold accuracies are the curves read at best_epoch.
        assert [c[res.best_epoch] for c in curves] == res.fold_accuracies


class TestProtocolSpans:
    """Per-fold spans are recorded when observability is on."""

    def test_fold_spans_recorded(self, toy_dataset):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            evaluate_kernel_svm(
                WeisfeilerLehmanKernel(2), toy_dataset, n_splits=3, seed=0
            )
            paths = [p for p, _ in obs.get_tracer().rows()]
        finally:
            obs.disable()
            obs.reset()
        assert paths.count("cv/fold") == 3
        assert "cv/gram" in paths
