"""Tests for stratified splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import stratified_kfold, train_test_split


class TestStratifiedKFold:
    def test_partition(self):
        y = np.array([0, 1] * 20)
        splits = stratified_kfold(y, n_splits=5, seed=0)
        assert len(splits) == 5
        all_test = np.concatenate([t for _, t in splits])
        assert sorted(all_test.tolist()) == list(range(40))

    def test_train_test_disjoint(self):
        y = np.array([0, 1] * 20)
        for train, test in stratified_kfold(y, n_splits=4, seed=0):
            assert set(train) & set(test) == set()

    def test_stratification(self):
        y = np.array([0] * 30 + [1] * 10)
        for _, test in stratified_kfold(y, n_splits=5, seed=0):
            counts = np.bincount(y[test], minlength=2)
            assert counts[0] == 6 and counts[1] == 2

    def test_too_few_samples_rejected(self):
        y = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError, match="folds"):
            stratified_kfold(y, n_splits=3)

    def test_rejects_one_split(self):
        with pytest.raises(ValueError):
            stratified_kfold(np.zeros(10, dtype=int), n_splits=1)

    def test_deterministic(self):
        y = np.array([0, 1, 2] * 10)
        a = stratified_kfold(y, n_splits=3, seed=4)
        b = stratified_kfold(y, n_splits=3, seed=4)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    @given(st.integers(2, 5), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_every_class_in_every_train(self, n_splits, seed):
        y = np.array(([0] * 12 + [1] * 9 + [2] * 7))
        for train, _ in stratified_kfold(y, n_splits=n_splits, seed=seed):
            assert set(y[train].tolist()) == {0, 1, 2}


class TestTrainTestSplit:
    def test_fraction_respected(self):
        y = np.array([0, 1] * 50)
        train, test = train_test_split(y, test_fraction=0.2, seed=0)
        assert len(test) == 20

    def test_both_classes_present(self):
        y = np.array([0] * 5 + [1] * 45)
        train, test = train_test_split(y, 0.2, seed=0)
        assert set(y[train].tolist()) == {0, 1}
        assert set(y[test].tolist()) == {0, 1}

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.array([0, 1]), test_fraction=1.0)
