"""Tests for vertex feature maps — including the Equation 7 property that
graph feature maps equal the sum of vertex feature maps."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.features import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
    WLVertexFeatures,
    extract_vertex_feature_matrices,
    graph_feature_maps,
    wl_stable_colors,
)
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph

from tests.conftest import random_graphs


class TestShortestPathFeatures:
    def test_path_counts(self):
        g = Graph(3, [(0, 1), (1, 2)], [0, 1, 0])
        counts = ShortestPathVertexFeatures().extract([g])[0]
        # Vertex 0 (label 0): sees label 1 at d=1, label 0 at d=2.
        assert counts[0][("sp", 0, 1, 1)] == 1
        assert counts[0][("sp", 0, 0, 2)] == 1

    def test_disconnected_pairs_skipped(self):
        g = Graph(3, [(0, 1)], [0, 0, 0])
        counts = ShortestPathVertexFeatures().extract([g])[0]
        assert sum(counts[0].values()) == 1  # only vertex 1 reachable

    def test_max_distance_truncates(self):
        g = path_graph(5)
        full = ShortestPathVertexFeatures().extract([g])[0]
        trunc = ShortestPathVertexFeatures(max_distance=1).extract([g])[0]
        assert sum(trunc[0].values()) < sum(full[0].values())
        assert sum(trunc[0].values()) == 1  # one neighbor at the path end

    def test_complete_graph_all_distance_one(self):
        g = complete_graph(4)
        counts = ShortestPathVertexFeatures().extract([g])[0]
        for c in counts:
            assert set(k[3] for k in c) == {1}

    def test_rejects_bad_max_distance(self):
        with pytest.raises(ValueError):
            ShortestPathVertexFeatures(max_distance=0)


class TestWLFeatures:
    def test_iteration_zero_is_label(self):
        g = Graph(2, [(0, 1)], [3, 4])
        counts = WLVertexFeatures(h=0).extract([g])[0]
        assert counts[0][("wl", 0, 3)] == 1
        assert counts[1][("wl", 0, 4)] == 1

    def test_one_count_per_iteration(self):
        g = cycle_graph(5)
        counts = WLVertexFeatures(h=3).extract([g])[0]
        assert all(sum(c.values()) == 4 for c in counts)

    def test_cross_graph_alignment(self):
        """Identical subtree patterns in different graphs share keys."""
        g1 = path_graph(3)
        g2 = path_graph(3)
        c1 = WLVertexFeatures(h=2).extract([g1])[0]
        c2 = WLVertexFeatures(h=2).extract([g2])[0]
        assert c1[1] == c2[1]  # middle vertices identical

    def test_stable_colors_deterministic(self):
        g = star_graph(5)
        assert wl_stable_colors(g, 3) == wl_stable_colors(g, 3)

    def test_stable_colors_distinguish_center(self):
        g = star_graph(4)
        colors = wl_stable_colors(g, 1)[1]
        assert colors[0] != colors[1]
        assert colors[1] == colors[2] == colors[3]

    def test_rejects_negative_h(self):
        with pytest.raises(ValueError):
            WLVertexFeatures(h=-1)


class TestGraphletFeatures:
    def test_sample_budget(self):
        g = cycle_graph(6)
        counts = GraphletVertexFeatures(k=3, samples=7, seed=0).extract([g])[0]
        assert all(sum(c.values()) == 7 for c in counts)

    def test_deterministic(self):
        g = cycle_graph(6)
        e = GraphletVertexFeatures(k=4, samples=5, seed=9)
        assert e.extract([g]) == e.extract([g])

    def test_order_independent_per_graph(self):
        """Each graph's features do not depend on dataset ordering."""
        g1, g2 = cycle_graph(6), star_graph(6)
        e = GraphletVertexFeatures(k=3, samples=6, seed=1)
        both = e.extract([g1, g2])
        flipped = e.extract([g2, g1])
        assert both[0] == flipped[1]
        assert both[1] == flipped[0]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            GraphletVertexFeatures(k=9)


class TestOneHotFeatures:
    def test_single_feature_per_vertex(self):
        from repro.features import OneHotLabelFeatures

        g = Graph(3, [(0, 1)], [5, 7, 5])
        counts = OneHotLabelFeatures().extract([g])[0]
        assert all(sum(c.values()) == 1 for c in counts)
        assert counts[0] == counts[2]
        assert counts[0] != counts[1]

    def test_matrix_is_one_hot(self):
        from repro.features import OneHotLabelFeatures

        g = Graph(4, [], [0, 1, 2, 1])
        matrices, vocab = extract_vertex_feature_matrices([g], OneHotLabelFeatures())
        assert vocab.size == 3
        assert np.allclose(matrices[0].sum(axis=1), 1.0)


class TestEquation7:
    """phi(G) == sum_v phi(v): the pooling identity of the paper."""

    @pytest.mark.parametrize(
        "extractor",
        [
            ShortestPathVertexFeatures(),
            WLVertexFeatures(h=2),
            GraphletVertexFeatures(k=3, samples=5, seed=0),
        ],
        ids=["sp", "wl", "gk"],
    )
    def test_sum_identity(self, extractor):
        graphs = [cycle_graph(5), star_graph(5), path_graph(4)]
        matrices, vocab = extract_vertex_feature_matrices(graphs, extractor)
        phi, vocab2 = graph_feature_maps(graphs, extractor)
        assert phi.shape == (3, vocab.size)
        for i, mat in enumerate(matrices):
            assert np.allclose(phi[i], mat.sum(axis=0))

    @given(random_graphs(min_nodes=2, max_nodes=7))
    @settings(max_examples=20, deadline=None)
    def test_sum_identity_wl_random(self, g):
        matrices, _ = extract_vertex_feature_matrices([g], WLVertexFeatures(h=2))
        phi, _ = graph_feature_maps([g], WLVertexFeatures(h=2))
        assert np.allclose(phi[0], matrices[0].sum(axis=0))


class TestJointRefinement:
    """wl_joint_refinement is the classic shared-dictionary WL
    implementation; its color partitions must agree with the stable-hash
    colors used by the extractors."""

    def test_shapes(self):
        from repro.features import wl_joint_refinement

        graphs = [cycle_graph(4), star_graph(5)]
        colorings = wl_joint_refinement(graphs, h=2)
        assert len(colorings) == 3  # iterations 0..2
        assert colorings[0][0].shape == (4,)
        assert colorings[2][1].shape == (5,)

    def test_cross_graph_colors_shared(self):
        from repro.features import wl_joint_refinement

        g1 = path_graph(3)
        g2 = path_graph(3)
        colorings = wl_joint_refinement([g1, g2], h=2)
        for it in range(3):
            assert np.array_equal(colorings[it][0], colorings[it][1])

    def test_partition_agrees_with_stable_hashes(self):
        from repro.features import wl_joint_refinement, wl_stable_colors

        g = star_graph(6)
        joint = wl_joint_refinement([g], h=2)
        stable = wl_stable_colors(g, 2)
        for it in range(3):
            a, b = joint[it][0], np.asarray(stable[it])
            # same partition: equal colors in one <=> equal in the other
            for u in range(g.n):
                for v in range(g.n):
                    assert (a[u] == a[v]) == (b[u] == b[v])


class TestMatrices:
    def test_shared_dimension(self):
        graphs = [cycle_graph(4), star_graph(6)]
        matrices, vocab = extract_vertex_feature_matrices(
            graphs, WLVertexFeatures(h=1)
        )
        assert matrices[0].shape == (4, vocab.size)
        assert matrices[1].shape == (6, vocab.size)

    def test_isomorphic_graphs_same_graph_map(self):
        g = cycle_graph(6).with_labels([0, 1, 0, 1, 0, 1])
        h = g.relabel_vertices([3, 4, 5, 0, 1, 2])
        phi, _ = graph_feature_maps([g, h], WLVertexFeatures(h=3))
        assert np.allclose(phi[0], phi[1])
