"""Tests for the feature vocabulary."""

import numpy as np
import pytest

from repro.features import FeatureVocabulary


class TestLifecycle:
    def test_add_then_freeze(self):
        v = FeatureVocabulary()
        v.add("b")
        v.add("a")
        v.freeze()
        assert v.size == 2

    def test_indices_sorted(self):
        v = FeatureVocabulary()
        v.add_all(["b", "a", "c"])
        v.freeze()
        assert [v.index(k) for k in ["a", "b", "c"]] == [0, 1, 2]

    def test_freeze_idempotent(self):
        v = FeatureVocabulary()
        v.add("x")
        v.freeze()
        v.freeze()
        assert v.size == 1

    def test_add_after_freeze_fails(self):
        v = FeatureVocabulary()
        v.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            v.add("x")

    def test_size_before_freeze_fails(self):
        with pytest.raises(RuntimeError):
            FeatureVocabulary().size

    def test_contains(self):
        v = FeatureVocabulary()
        v.add("x")
        assert "x" in v
        assert "y" not in v
        v.freeze()
        assert "x" in v

    def test_keys_in_column_order(self):
        v = FeatureVocabulary()
        v.add_all(["z", "m", "a"])
        v.freeze()
        assert v.keys() == ["a", "m", "z"]

    def test_order_independent_of_insertion(self):
        v1 = FeatureVocabulary()
        v1.add_all(["x", "y"])
        v2 = FeatureVocabulary()
        v2.add_all(["y", "x"])
        assert v1.freeze().keys() == v2.freeze().keys()


class TestVectorize:
    def test_basic(self):
        v = FeatureVocabulary()
        v.add_all(["a", "b"])
        v.freeze()
        vec = v.vectorize({"a": 2.0, "b": 3.0})
        assert vec.tolist() == [2.0, 3.0]

    def test_unknown_keys_ignored(self):
        v = FeatureVocabulary()
        v.add("a")
        v.freeze()
        vec = v.vectorize({"a": 1.0, "unknown": 5.0})
        assert vec.tolist() == [1.0]

    def test_rows(self):
        v = FeatureVocabulary()
        v.add_all(["a", "b"])
        v.freeze()
        mat = v.vectorize_rows([{"a": 1}, {"b": 2}, {}])
        assert mat.shape == (3, 2)
        assert mat[2].tolist() == [0.0, 0.0]

    def test_tuple_keys(self):
        v = FeatureVocabulary()
        v.add_all([("wl", 0, 5), ("wl", 1, 3)])
        v.freeze()
        vec = v.vectorize({("wl", 0, 5): 4})
        assert vec.sum() == 4
