"""Tests for walk-based vertex features."""

import numpy as np
import pytest

from repro.features import (
    LabeledWalkVertexFeatures,
    ReturnProbabilityVertexFeatures,
    extract_vertex_feature_matrices,
    graph_feature_maps,
)
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph


class TestLabeledWalks:
    def test_single_edge_counts(self):
        g = Graph(2, [(0, 1)], [0, 1])
        counts = LabeledWalkVertexFeatures(length=2).extract([g])[0]
        # From vertex 0: walks (0,1) and (0,1,0).
        assert counts[0][("walk", (0, 1))] == 1
        assert counts[0][("walk", (0, 1, 0))] == 1
        assert sum(counts[0].values()) == 2

    def test_walk_counts_match_adjacency_powers(self):
        """Total walks of length k from v == row sum of A^k."""
        g = complete_graph(4)
        length = 3
        counts = LabeledWalkVertexFeatures(length=length).extract([g])[0]
        a = g.adjacency_matrix()
        expected = sum(np.linalg.matrix_power(a, k).sum(axis=1) for k in (1, 2, 3))
        totals = [sum(c.values()) for c in counts]
        assert np.allclose(totals, expected)

    def test_revisits_allowed(self):
        g = path_graph(2)
        counts = LabeledWalkVertexFeatures(length=4).extract([g])[0]
        # Walks bounce on the single edge: one walk per length.
        assert sum(counts[0].values()) == 4

    def test_label_sequences_distinguish(self):
        g1 = path_graph(3).with_labels([0, 1, 0])
        g2 = path_graph(3).with_labels([0, 0, 1])
        phi, _ = graph_feature_maps([g1, g2], LabeledWalkVertexFeatures(length=2))
        assert not np.allclose(phi[0], phi[1])

    def test_isomorphism_invariance(self):
        g = cycle_graph(5).with_labels([0, 1, 2, 1, 0])
        h = g.relabel_vertices([4, 0, 1, 2, 3])
        phi, _ = graph_feature_maps([g, h], LabeledWalkVertexFeatures(length=3))
        assert np.allclose(phi[0], phi[1])

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            LabeledWalkVertexFeatures(length=0)

    def test_plugs_into_deepmap(self, small_dataset):
        from repro.core import DeepMapClassifier

        graphs, y = small_dataset
        model = DeepMapClassifier(
            LabeledWalkVertexFeatures(length=2), r=3, epochs=3, seed=0
        )
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)


class TestReturnProbabilityFeatures:
    def test_one_count_per_step(self):
        g = cycle_graph(6)
        counts = ReturnProbabilityVertexFeatures(steps=5).extract([g])[0]
        assert all(sum(c.values()) == 5 for c in counts)

    def test_symmetric_vertices_identical(self):
        g = cycle_graph(8)
        counts = ReturnProbabilityVertexFeatures(steps=6).extract([g])[0]
        assert all(c == counts[0] for c in counts)

    def test_role_separation_on_star(self):
        g = star_graph(6)
        counts = ReturnProbabilityVertexFeatures(steps=4).extract([g])[0]
        assert counts[0] != counts[1]  # hub vs leaf
        assert counts[1] == counts[2]  # leaf vs leaf

    def test_bins_bounded(self):
        g = path_graph(2)  # p returns with probability 1 at even steps
        counts = ReturnProbabilityVertexFeatures(steps=2, bins=4).extract([g])[0]
        for c in counts:
            for (_, _, level) in c:
                assert 0 <= level < 4

    def test_matrix_shapes(self):
        graphs = [cycle_graph(4), star_graph(5)]
        matrices, vocab = extract_vertex_feature_matrices(
            graphs, ReturnProbabilityVertexFeatures(steps=3)
        )
        assert matrices[0].shape == (4, vocab.size)
        assert matrices[1].shape == (5, vocab.size)
