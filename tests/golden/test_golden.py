"""Golden end-to-end regression fixture.

Recomputes the full DeepMap path (GK / SP / WL vertex features ->
receptive-field encoding -> CNN training -> epoch selection) on a tiny
pinned-seed dataset and compares against the committed expectations in
``expected.json`` **exactly** — JSON floats round-trip bitwise, so any
numeric drift anywhere in the pipeline fails here.

Intentional changes: regenerate with

    REPRO_GOLDEN_BREAK_OK=1 PYTHONPATH=src python scripts/regen_golden.py

and commit the diff alongside the change that caused it (the env gate
and the digest pin below both force the break to be explicit).
"""

import importlib.util
import json
from pathlib import Path

import pytest

HERE = Path(__file__).resolve().parent
EXPECTED_PATH = HERE / "expected.json"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", HERE.parents[1] / "scripts" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def recomputed():
    return _load_regen().compute_results()


@pytest.fixture(scope="module")
def expected():
    return json.loads(EXPECTED_PATH.read_text())


@pytest.mark.parametrize("variant", ["deepmap-gk", "deepmap-sp", "deepmap-wl"])
class TestGoldenAccuracies:
    def test_fold_accuracies_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["fold_accuracies"]
            == expected["results"][variant]["fold_accuracies"]
        )

    def test_epoch_selection_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["best_epoch"]
            == expected["results"][variant]["best_epoch"]
        )

    def test_mean_curve_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["mean_curve"]
            == expected["results"][variant]["mean_curve"]
        )


def test_fixture_covers_all_variants(expected):
    assert sorted(expected["results"]) == [
        "deepmap-gk",
        "deepmap-sp",
        "deepmap-wl",
    ]


#: blake2b-128 of the committed expected.json.  Regenerated ONCE since
#: the seed (was df882acdf7aeaeebf3e1253975f521d0): the WL splitmix64
#: color remap moved the deepmap-wl variant only — color values feed
#: vocabulary index order, hence feature-column order, hence CNN weight
#: init — while deepmap-gk and deepmap-sp stayed byte-identical (see
#: the digest diff printed by scripts/regen_golden.py in that commit).
EXPECTED_JSON_DIGEST = "41a78086a7c39cb99f6b41a785990b84"


def test_fixture_file_is_byte_identical_to_seed():
    """The fixture itself must never need `regen_golden.py` after an
    output-equivalent change.

    A PR that regenerates ``expected.json`` has, by definition, changed
    the numbers somewhere in the pipeline; this digest makes such a
    regeneration impossible to slip in silently alongside "equivalent"
    refactors — the pin has to be updated in the same diff, where a
    reviewer will ask why.
    """
    import hashlib

    digest = hashlib.blake2b(EXPECTED_PATH.read_bytes(), digest_size=16).hexdigest()
    assert digest == EXPECTED_JSON_DIGEST


def test_regen_refuses_without_break_ok(monkeypatch, capsys):
    """`regen_golden.main()` must exit(2) before computing anything when
    REPRO_GOLDEN_BREAK_OK is not set — golden regeneration has to be an
    explicit decision, never a side effect of running the script."""
    regen = _load_regen()
    monkeypatch.delenv("REPRO_GOLDEN_BREAK_OK", raising=False)
    before = EXPECTED_PATH.read_bytes()
    with pytest.raises(SystemExit) as exc:
        regen.main()
    assert exc.value.code == 2
    assert "REPRO_GOLDEN_BREAK_OK" in capsys.readouterr().err
    assert EXPECTED_PATH.read_bytes() == before


def test_recomputation_is_deterministic():
    """Two independent recomputes agree exactly — the golden comparison
    is meaningful only if the pipeline itself is bit-stable."""
    regen = _load_regen()
    assert regen.compute_results() == regen.compute_results()
