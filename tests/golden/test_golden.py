"""Golden end-to-end regression fixture.

Recomputes the full DeepMap path (GK / SP / WL vertex features ->
receptive-field encoding -> CNN training -> epoch selection) on a tiny
pinned-seed dataset and compares against the committed expectations in
``expected.json`` **exactly** — JSON floats round-trip bitwise, so any
numeric drift anywhere in the pipeline fails here.

Intentional changes: regenerate with

    PYTHONPATH=src python scripts/regen_golden.py

and commit the diff alongside the change that caused it.
"""

import importlib.util
import json
from pathlib import Path

import pytest

HERE = Path(__file__).resolve().parent
EXPECTED_PATH = HERE / "expected.json"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", HERE.parents[1] / "scripts" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def recomputed():
    return _load_regen().compute_results()


@pytest.fixture(scope="module")
def expected():
    return json.loads(EXPECTED_PATH.read_text())


@pytest.mark.parametrize("variant", ["deepmap-gk", "deepmap-sp", "deepmap-wl"])
class TestGoldenAccuracies:
    def test_fold_accuracies_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["fold_accuracies"]
            == expected["results"][variant]["fold_accuracies"]
        )

    def test_epoch_selection_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["best_epoch"]
            == expected["results"][variant]["best_epoch"]
        )

    def test_mean_curve_exact(self, recomputed, expected, variant):
        assert (
            recomputed[variant]["mean_curve"]
            == expected["results"][variant]["mean_curve"]
        )


def test_fixture_covers_all_variants(expected):
    assert sorted(expected["results"]) == [
        "deepmap-gk",
        "deepmap-sp",
        "deepmap-wl",
    ]
