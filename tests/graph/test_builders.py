"""Tests for graph construction helpers and random models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    barabasi_albert,
    complete_graph,
    connected_components,
    cycle_graph,
    disjoint_union,
    empty_graph,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graph.graph import Graph


class TestDeterministicBuilders:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.n == 5 and g.num_edges == 0

    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degrees().tolist() == [1, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_rejects_zero(self):
        with pytest.raises(ValueError):
            star_graph(0)

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.n == 6
        assert g.num_edges == 7  # 2*(3-1) horizontal + 3 vertical

    def test_grid_corner_degree(self):
        g = grid_graph(3, 3)
        assert g.degree(0) == 2  # corners
        assert g.degree(4) == 4  # center


class TestRandomModels:
    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(10, 0.3, seed=5) == erdos_renyi(10, 0.3, seed=5)

    def test_erdos_renyi_p_zero(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0

    def test_erdos_renyi_p_one(self):
        assert erdos_renyi(6, 1.0, seed=1).num_edges == 15

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_erdos_renyi_edge_count_concentrates(self):
        g = erdos_renyi(100, 0.2, seed=0)
        expected = 0.2 * 100 * 99 / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_barabasi_albert_sizes(self):
        g = barabasi_albert(30, 2, seed=0)
        assert g.n == 30
        # Each of the 28 new vertices adds exactly 2 edges.
        assert g.num_edges == 28 * 2

    def test_barabasi_albert_rejects_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)

    def test_barabasi_albert_has_hubs(self):
        g = barabasi_albert(200, 2, seed=0)
        assert g.degrees().max() > 3 * np.median(g.degrees())

    def test_watts_strogatz_p0_is_lattice(self):
        g = watts_strogatz(10, 4, 0.0, seed=0)
        assert all(g.degree(v) == 4 for v in g)

    def test_watts_strogatz_rejects_odd_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)

    def test_watts_strogatz_edge_count_preserved(self):
        g0 = watts_strogatz(20, 4, 0.0, seed=0)
        g1 = watts_strogatz(20, 4, 0.5, seed=0)
        assert g0.num_edges == g1.num_edges

    def test_random_tree_edge_count(self):
        g = random_tree(15, seed=0)
        assert g.num_edges == 14
        assert len(connected_components(g)) == 1

    def test_random_tree_trivial(self):
        assert random_tree(1, seed=0).n == 1
        assert random_tree(0, seed=0).n == 0

    @given(st.integers(2, 20), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.num_edges == n - 1
        assert len(connected_components(g)) == 1


class TestDisjointUnion:
    def test_counts(self):
        g = disjoint_union([path_graph(3), cycle_graph(4)])
        assert g.n == 7
        assert g.num_edges == 2 + 4

    def test_labels_concatenated(self):
        a = Graph(2, [], [1, 2])
        b = Graph(2, [], [3, 4])
        assert disjoint_union([a, b]).labels.tolist() == [1, 2, 3, 4]

    def test_no_cross_edges(self):
        g = disjoint_union([complete_graph(3), complete_graph(3)])
        assert len(connected_components(g)) == 2

    def test_empty_list(self):
        assert disjoint_union([]).n == 0


class TestEnsureConnected:
    def test_already_connected_unchanged(self):
        g = path_graph(5)
        assert ensure_connected(g, seed=0) == g

    def test_connects_components(self):
        g = disjoint_union([path_graph(3), path_graph(3), path_graph(3)])
        h = ensure_connected(g, seed=0)
        assert len(connected_components(h)) == 1
        assert h.num_edges == g.num_edges + 2

    def test_preserves_labels(self):
        g = Graph(4, [(0, 1), (2, 3)], [9, 8, 7, 6])
        h = ensure_connected(g, seed=0)
        assert h.labels.tolist() == [9, 8, 7, 6]
