"""Tests for WL refinement, invariant hashing, and canonical ranking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    canonical_ranking,
    cycle_graph,
    path_graph,
    star_graph,
    wl_graph_hash,
    wl_iterations,
    wl_refine,
)

from tests.conftest import random_graphs


def _random_permutation(n, rnd):
    perm = list(range(n))
    rnd.shuffle(perm)
    return perm


class TestWLRefine:
    def test_splits_by_degree_first_round(self):
        g = path_graph(3)  # degrees 1, 2, 1
        colors = np.zeros(3, dtype=np.int64)
        new, _ = wl_refine(g, colors)
        assert new[0] == new[2]
        assert new[1] != new[0]

    def test_stable_partition_fixed_point(self):
        g = cycle_graph(6)
        colors = np.zeros(6, dtype=np.int64)
        new, _ = wl_refine(g, colors)
        # all vertices equivalent in a cycle
        assert len(set(new.tolist())) == 1

    def test_respects_initial_labels(self):
        g = Graph(2, [(0, 1)], [0, 1])
        colors, _ = wl_refine(g, g.labels)
        assert colors[0] != colors[1]


class TestWLIterations:
    def test_iteration_zero_is_compressed_labels(self):
        g = Graph(3, [], [10, 20, 10])
        its = wl_iterations(g, 0)
        assert len(its) == 1
        assert its[0].tolist() == [0, 1, 0]

    def test_length(self):
        g = cycle_graph(4)
        assert len(wl_iterations(g, 3)) == 4

    def test_rejects_negative_h(self):
        import pytest

        with pytest.raises(ValueError):
            wl_iterations(cycle_graph(4), -1)


class TestWLGraphHash:
    def test_isomorphic_equal(self):
        g = path_graph(5)
        h = g.relabel_vertices([4, 2, 0, 1, 3])
        assert wl_graph_hash(g) == wl_graph_hash(h)

    def test_different_structures_differ(self):
        assert wl_graph_hash(path_graph(4)) != wl_graph_hash(star_graph(4))

    def test_labels_matter(self):
        g1 = Graph(2, [(0, 1)], [0, 0])
        g2 = Graph(2, [(0, 1)], [0, 1])
        assert wl_graph_hash(g1) != wl_graph_hash(g2)

    @given(random_graphs(min_nodes=2, max_nodes=8), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_relabeling(self, g, rnd):
        perm = _random_permutation(g.n, rnd)
        assert wl_graph_hash(g) == wl_graph_hash(g.relabel_vertices(perm))


class TestCanonicalRanking:
    def test_star_center_first(self):
        order = canonical_ranking(star_graph(5))
        assert order[0] == 0

    def test_is_permutation(self):
        g = cycle_graph(7)
        order = canonical_ranking(g)
        assert sorted(order.tolist()) == list(range(7))

    @given(random_graphs(min_nodes=2, max_nodes=7), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_invariant_color_sequence(self, g, rnd):
        """The multiset of (degree, label) along the canonical order is
        identical for isomorphic graphs — the ranking is canonical up to
        WL-equivalent vertices."""
        perm = _random_permutation(g.n, rnd)
        h = g.relabel_vertices(perm)
        key_g = [(g.degree(v), g.label(v)) for v in canonical_ranking(g)]
        key_h = [(h.degree(v), h.label(v)) for v in canonical_ranking(h)]
        assert key_g == key_h
