"""Tests for centrality measures against networkx and known structures."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph import (
    Graph,
    centrality_ranking,
    cycle_graph,
    degree_centrality,
    eigenvector_centrality,
    path_graph,
    star_graph,
    to_networkx,
)

from tests.conftest import random_graphs


class TestEigenvectorCentrality:
    def test_star_center_dominates(self):
        c = eigenvector_centrality(star_graph(6))
        assert c[0] == c.max()
        assert np.allclose(c[1:], c[1])

    def test_cycle_uniform(self):
        c = eigenvector_centrality(cycle_graph(7))
        assert np.allclose(c, c[0])

    def test_path_middle_highest(self):
        c = eigenvector_centrality(path_graph(5))
        assert np.argmax(c) == 2
        assert np.allclose(c[0], c[4])  # symmetry

    def test_unit_norm(self):
        c = eigenvector_centrality(path_graph(6))
        assert np.isclose(np.linalg.norm(c), 1.0)

    def test_empty_graph(self):
        assert eigenvector_centrality(Graph(0, [])).size == 0

    def test_edgeless_uniform(self):
        c = eigenvector_centrality(Graph(4, []))
        assert np.allclose(c, 0.5)

    def test_bipartite_converges(self):
        # Power iteration on plain A oscillates on bipartite graphs; the
        # A + I shift must converge.
        g = Graph(4, [(0, 2), (0, 3), (1, 2), (1, 3)])  # K_{2,2}
        c = eigenvector_centrality(g)
        assert np.allclose(c, c[0])

    @given(random_graphs(min_nodes=2, max_nodes=10))
    @settings(max_examples=25, deadline=None)
    def test_non_negative(self, g):
        assert np.all(eigenvector_centrality(g) >= 0)

    def test_matches_networkx_on_connected(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            from repro.graph import ensure_connected, erdos_renyi

            g = ensure_connected(erdos_renyi(12, 0.3, rng), rng)
            ours = eigenvector_centrality(g)
            theirs = nx.eigenvector_centrality_numpy(to_networkx(g))
            theirs = np.array([theirs[v] for v in range(g.n)])
            theirs = np.abs(theirs) / np.linalg.norm(theirs)
            assert np.allclose(ours, theirs, atol=1e-5)


class TestDegreeCentrality:
    def test_star(self):
        c = degree_centrality(star_graph(5))
        assert c[0] == 1.0
        assert np.allclose(c[1:], 0.25)

    def test_singleton(self):
        assert degree_centrality(Graph(1, [])).tolist() == [0.0]

    def test_matches_networkx(self):
        g = path_graph(6)
        theirs = nx.degree_centrality(to_networkx(g))
        ours = degree_centrality(g)
        assert np.allclose(ours, [theirs[v] for v in range(g.n)])


class TestCentralityRanking:
    def test_descending(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert centrality_ranking(scores).tolist() == [1, 2, 0]

    def test_ascending(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert centrality_ranking(scores, descending=False).tolist() == [0, 2, 1]

    def test_stable_on_ties(self):
        scores = np.array([0.5, 0.5, 0.5])
        assert centrality_ranking(scores).tolist() == [0, 1, 2]
