"""Tests for networkx interop."""

import networkx as nx
from hypothesis import given, settings

from repro.graph import Graph, from_networkx, to_networkx

from tests.conftest import random_graphs


class TestRoundtrip:
    @given(random_graphs(min_nodes=1, max_nodes=10))
    @settings(max_examples=30, deadline=None)
    def test_graph_roundtrip(self, g):
        assert from_networkx(to_networkx(g)) == g

    def test_labels_preserved(self):
        g = Graph(3, [(0, 1)], [4, 5, 6])
        nxg = to_networkx(g)
        assert nxg.nodes[1]["label"] == 5
        assert from_networkx(nxg).labels.tolist() == [4, 5, 6]


class TestFromNetworkx:
    def test_arbitrary_node_names(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        nxg.add_node("c", label=7)
        g = from_networkx(nxg)
        assert g.n == 3
        assert g.num_edges == 1

    def test_missing_labels_default_zero(self):
        nxg = nx.path_graph(3)
        g = from_networkx(nxg)
        assert g.labels.tolist() == [0, 0, 0]

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_edges == 1

    def test_custom_label_attr(self):
        nxg = nx.Graph()
        nxg.add_node(0, atom=3)
        g = from_networkx(nxg, label_attr="atom")
        assert g.labels.tolist() == [3]
