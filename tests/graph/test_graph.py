"""Unit tests for the core Graph type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import Graph

from tests.conftest import random_graphs


class TestConstruction:
    def test_empty(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.num_edges == 0

    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_default_labels_are_zero(self):
        g = Graph(3, [(0, 1)])
        assert g.labels.tolist() == [0, 0, 0]

    def test_labels_stored(self):
        g = Graph(3, [], [5, 6, 7])
        assert g.label(1) == 6

    def test_edges_normalised_u_lt_v(self):
        g = Graph(3, [(2, 0), (2, 1)])
        assert g.edges.tolist() == [[0, 2], [1, 2]]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ValueError, match="length"):
            Graph(3, [], [1, 2])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError, match="non-negative"):
            Graph(2, [], [0, -1])


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_neighbors_isolated(self):
        g = Graph(3, [(0, 1)])
        assert g.neighbors(2).size == 0

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_degrees_vector(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.degrees().tolist() == [1, 2, 1]

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_iter_and_len(self):
        g = Graph(4, [])
        assert list(g) == [0, 1, 2, 3]
        assert len(g) == 4

    def test_repr_mentions_counts(self):
        g = Graph(3, [(0, 1)], [0, 0, 1])
        assert "n=3" in repr(g)
        assert "m=1" in repr(g)

    def test_arrays_immutable(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.labels[0] = 5
        with pytest.raises(ValueError):
            g.edges[0, 0] = 2


class TestAdjacencyMatrix:
    def test_symmetric(self):
        g = Graph(3, [(0, 1), (1, 2)])
        a = g.adjacency_matrix()
        assert np.array_equal(a, a.T)

    def test_values(self):
        g = Graph(3, [(0, 2)])
        a = g.adjacency_matrix()
        assert a[0, 2] == 1 and a[2, 0] == 1
        assert a.sum() == 2

    def test_zero_diagonal(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert np.all(np.diag(g.adjacency_matrix()) == 0)


class TestEquality:
    def test_equal(self):
        assert Graph(2, [(0, 1)], [1, 2]) == Graph(2, [(0, 1)], [1, 2])

    def test_unequal_labels(self):
        assert Graph(2, [(0, 1)], [1, 2]) != Graph(2, [(0, 1)], [2, 1])

    def test_unequal_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_hashable(self):
        g1 = Graph(2, [(0, 1)])
        g2 = Graph(2, [(0, 1)])
        assert hash(g1) == hash(g2)
        assert len({g1, g2}) == 1


class TestRelabelVertices:
    def test_identity(self):
        g = Graph(3, [(0, 1), (1, 2)], [1, 2, 3])
        assert g.relabel_vertices([0, 1, 2]) == g

    def test_labels_travel(self):
        g = Graph(2, [(0, 1)], [7, 9])
        h = g.relabel_vertices([1, 0])
        assert h.labels.tolist() == [9, 7]

    def test_structure_preserved(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        h = g.relabel_vertices([3, 2, 1, 0])
        assert h.num_edges == g.num_edges
        assert sorted(h.degrees().tolist()) == sorted(g.degrees().tolist())

    def test_rejects_non_permutation(self):
        g = Graph(3, [])
        with pytest.raises(ValueError):
            g.relabel_vertices([0, 0, 1])

    @given(random_graphs(min_nodes=2, max_nodes=8), st.randoms())
    def test_degree_sequence_invariant(self, g, rnd):
        perm = list(range(g.n))
        rnd.shuffle(perm)
        h = g.relabel_vertices(perm)
        assert sorted(h.degrees().tolist()) == sorted(g.degrees().tolist())
        assert sorted(h.labels.tolist()) == sorted(g.labels.tolist())


class TestInducedSubgraph:
    def test_triangle_from_k4(self):
        k4 = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        sub = k4.induced_subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.num_edges == 3

    def test_labels_follow_order(self):
        g = Graph(3, [(0, 1)], [5, 6, 7])
        sub = g.induced_subgraph([2, 0])
        assert sub.labels.tolist() == [7, 5]

    def test_rejects_duplicates(self):
        g = Graph(3, [])
        with pytest.raises(ValueError, match="distinct"):
            g.induced_subgraph([0, 0])

    def test_empty_selection(self):
        g = Graph(3, [(0, 1)])
        sub = g.induced_subgraph([])
        assert sub.n == 0


class TestWithLabels:
    def test_replaces_labels(self):
        g = Graph(2, [(0, 1)], [0, 0])
        h = g.with_labels([3, 4])
        assert h.labels.tolist() == [3, 4]
        assert h.num_edges == 1
        assert g.labels.tolist() == [0, 0]  # original untouched
