"""Tests for graphlet enumeration, sampling, and canonicalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    canonical_graphlet_code,
    complete_graph,
    count_graphlets_per_vertex,
    cycle_graph,
    enumerate_graphlets,
    num_connected_graphlets,
    path_graph,
    sample_rooted_graphlets,
    star_graph,
)

from tests.conftest import random_graphs


class TestCanonicalCode:
    def test_path_vs_triangle(self):
        tri = complete_graph(3)
        pat = path_graph(3)
        code_tri = canonical_graphlet_code(tri, [0, 1, 2])
        code_pat = canonical_graphlet_code(pat, [0, 1, 2])
        assert code_tri != code_pat

    def test_invariant_under_vertex_order(self):
        g = path_graph(3)
        assert canonical_graphlet_code(g, [0, 1, 2]) == canonical_graphlet_code(
            g, [2, 0, 1]
        )

    def test_size_recorded(self):
        g = complete_graph(4)
        k, _ = canonical_graphlet_code(g, [0, 1, 2, 3])
        assert k == 4

    def test_rejects_oversized(self):
        g = complete_graph(7)
        with pytest.raises(ValueError):
            canonical_graphlet_code(g, list(range(6)))

    @given(random_graphs(min_nodes=5, max_nodes=9), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_relabeling_invariance(self, g, rnd):
        verts = list(range(5))
        perm = list(range(g.n))
        rnd.shuffle(perm)
        h = g.relabel_vertices(perm)
        assert canonical_graphlet_code(g, verts) == canonical_graphlet_code(
            h, [perm[v] for v in verts]
        )


class TestNumConnectedGraphlets:
    def test_known_counts(self):
        # OEIS A001349: connected graphs on n nodes.
        assert num_connected_graphlets(3) == 2
        assert num_connected_graphlets(4) == 6
        assert num_connected_graphlets(5) == 21

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            num_connected_graphlets(6)


class TestEnumeration:
    def test_k4_all_triangles(self):
        counts = enumerate_graphlets(complete_graph(4), 3)
        assert sum(counts.values()) == 4  # C(4,3) all connected
        assert len(counts) == 1  # all triangles

    def test_path_graphlets(self):
        counts = enumerate_graphlets(path_graph(5), 3)
        # 3 consecutive triples, all paths, no triangles.
        assert sum(counts.values()) == 3
        assert len(counts) == 1

    def test_star_counts(self):
        counts = enumerate_graphlets(star_graph(5), 3)
        # every pair of leaves + center = a path graphlet: C(4,2) = 6
        assert sum(counts.values()) == 6

    def test_cycle_has_no_triangle(self):
        tri_code = canonical_graphlet_code(complete_graph(3), [0, 1, 2])
        counts = enumerate_graphlets(cycle_graph(6), 3)
        assert tri_code not in counts

    def test_covers_all_types_on_rich_graph(self):
        # A graph containing all six connected 4-graphlets.
        from repro.graph import erdos_renyi

        found = set()
        rng = np.random.default_rng(0)
        for _ in range(20):
            g = erdos_renyi(8, 0.5, rng)
            found |= set(enumerate_graphlets(g, 4).keys())
        assert len(found) == 6


class TestSampling:
    def test_sample_count(self):
        g = cycle_graph(8)
        samples = sample_rooted_graphlets(g, 0, k=4, q=12, seed=0)
        assert len(samples) == 12

    def test_samples_contain_root_component_limit(self):
        g = Graph(4, [(0, 1)])  # component of size 2
        samples = sample_rooted_graphlets(g, 0, k=4, q=5, seed=0)
        assert all(k <= 2 for k, _ in samples)

    def test_isolated_vertex(self):
        g = Graph(3, [(1, 2)])
        samples = sample_rooted_graphlets(g, 0, k=3, q=4, seed=0)
        assert all(k == 1 for k, _ in samples)

    def test_deterministic_with_seed(self):
        g = cycle_graph(10)
        a = sample_rooted_graphlets(g, 0, k=5, q=10, seed=3)
        b = sample_rooted_graphlets(g, 0, k=5, q=10, seed=3)
        assert a == b

    def test_triangle_sampler_finds_triangle(self):
        g = complete_graph(3)
        samples = sample_rooted_graphlets(g, 0, k=3, q=5, seed=0)
        tri_code = canonical_graphlet_code(g, [0, 1, 2])
        assert all(s == tri_code for s in samples)

    def test_per_vertex_histograms(self):
        g = cycle_graph(6)
        hists = count_graphlets_per_vertex(g, k=3, q=8, seed=0)
        assert len(hists) == 6
        assert all(sum(h.values()) == 8 for h in hists)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            sample_rooted_graphlets(cycle_graph(4), 0, k=3, q=0)
