"""Cross-cutting isomorphism-invariance properties (hypothesis-driven).

The paper's Theorem 1 rests on a chain of invariances: centrality values,
BFS structure, WL colors, and feature maps must all be preserved under
vertex relabeling.  These tests pin each link of the chain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    apsp_bfs,
    connected_components,
    eigenvector_centrality,
    enumerate_graphlets,
)

from tests.conftest import random_graphs


def _perm(n, rnd):
    p = list(range(n))
    rnd.shuffle(p)
    return p


class TestCentralityInvariance:
    @given(random_graphs(min_nodes=2, max_nodes=9), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_centrality_multiset_invariant(self, g, rnd):
        perm = _perm(g.n, rnd)
        h = g.relabel_vertices(perm)
        cg = np.sort(eigenvector_centrality(g))
        ch = np.sort(eigenvector_centrality(h))
        assert np.allclose(cg, ch, atol=1e-6)

    @given(random_graphs(min_nodes=2, max_nodes=9), st.randoms())
    @settings(max_examples=30, deadline=None)
    def test_centrality_travels_with_vertices(self, g, rnd):
        perm = _perm(g.n, rnd)
        h = g.relabel_vertices(perm)
        cg = eigenvector_centrality(g)
        ch = eigenvector_centrality(h)
        # vertex v of g is perm[v] of h
        assert np.allclose(cg, ch[np.array(perm)], atol=1e-6)


class TestDistanceInvariance:
    @given(random_graphs(min_nodes=2, max_nodes=8), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_distance_matrix_conjugation(self, g, rnd):
        perm = np.array(_perm(g.n, rnd))
        h = g.relabel_vertices(perm.tolist())
        dg = apsp_bfs(g)
        dh = apsp_bfs(h)
        assert np.array_equal(dg, dh[np.ix_(perm, perm)])


class TestStructuralCounts:
    @given(random_graphs(min_nodes=3, max_nodes=8), st.randoms())
    @settings(max_examples=20, deadline=None)
    def test_graphlet_histogram_invariant(self, g, rnd):
        perm = _perm(g.n, rnd)
        h = g.relabel_vertices(perm)
        assert enumerate_graphlets(g, 3) == enumerate_graphlets(h, 3)

    @given(random_graphs(min_nodes=1, max_nodes=10), st.randoms())
    @settings(max_examples=20, deadline=None)
    def test_component_sizes_invariant(self, g, rnd):
        perm = _perm(g.n, rnd)
        h = g.relabel_vertices(perm)
        sizes_g = sorted(len(c) for c in connected_components(g))
        sizes_h = sorted(len(c) for c in connected_components(h))
        assert sizes_g == sizes_h
