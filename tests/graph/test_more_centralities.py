"""Tests for PageRank, closeness, and betweenness centralities."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph import (
    Graph,
    betweenness_centrality,
    closeness_centrality,
    cycle_graph,
    pagerank_centrality,
    path_graph,
    star_graph,
    to_networkx,
)

from tests.conftest import random_graphs


class TestPageRank:
    def test_sums_to_one(self):
        pr = pagerank_centrality(star_graph(6))
        assert np.isclose(pr.sum(), 1.0)

    def test_star_center_highest(self):
        pr = pagerank_centrality(star_graph(6))
        assert np.argmax(pr) == 0

    def test_matches_networkx(self):
        g = path_graph(7)
        ours = pagerank_centrality(g)
        theirs = nx.pagerank(to_networkx(g))
        assert np.allclose(ours, [theirs[v] for v in range(g.n)], atol=1e-6)

    def test_handles_isolated_vertices(self):
        g = Graph(4, [(0, 1)])
        pr = pagerank_centrality(g)
        assert np.isclose(pr.sum(), 1.0)
        assert np.all(pr > 0)

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            pagerank_centrality(cycle_graph(4), damping=1.5)

    def test_empty_graph(self):
        assert pagerank_centrality(Graph(0, [])).size == 0


class TestCloseness:
    def test_star_center_highest(self):
        c = closeness_centrality(star_graph(6))
        assert np.argmax(c) == 0

    def test_matches_networkx_connected(self):
        g = cycle_graph(7)
        ours = closeness_centrality(g)
        theirs = nx.closeness_centrality(to_networkx(g))
        assert np.allclose(ours, [theirs[v] for v in range(g.n)], atol=1e-9)

    def test_matches_networkx_disconnected(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        ours = closeness_centrality(g)
        theirs = nx.closeness_centrality(to_networkx(g))
        assert np.allclose(ours, [theirs[v] for v in range(g.n)], atol=1e-9)

    def test_singleton(self):
        assert closeness_centrality(Graph(1, [])).tolist() == [0.0]


class TestBetweenness:
    def test_path_middle_highest(self):
        b = betweenness_centrality(path_graph(5))
        assert np.argmax(b) == 2

    def test_leaves_zero(self):
        b = betweenness_centrality(star_graph(5))
        assert np.allclose(b[1:], 0.0)
        assert b[0] > 0

    @given(random_graphs(min_nodes=2, max_nodes=8))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, g):
        ours = betweenness_centrality(g)
        theirs = nx.betweenness_centrality(to_networkx(g))
        assert np.allclose(ours, [theirs[v] for v in range(g.n)], atol=1e-9)

    def test_cycle_uniform(self):
        b = betweenness_centrality(cycle_graph(6))
        assert np.allclose(b, b[0])


class TestOrderingIntegration:
    @pytest.mark.parametrize(
        "ordering", ["pagerank", "closeness", "betweenness"]
    )
    def test_new_orderings_usable(self, ordering):
        from repro.core import centrality_scores, vertex_sequence

        g = star_graph(6)
        scores = centrality_scores(g, ordering)
        seq = vertex_sequence(g, scores, ordering)
        assert seq[0] == 0  # the hub leads under all these measures
