"""Tests for graph products and their relation to the RW kernel."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    cartesian_product,
    cycle_graph,
    direct_product,
    path_graph,
    product_vertex_pairs,
)
from repro.kernels import RandomWalkKernel


class TestDirectProduct:
    def test_vertex_count_uniform_labels(self):
        g1, g2 = path_graph(3), path_graph(2)
        prod, pairs = direct_product(g1, g2)
        assert prod.n == 6
        assert len(pairs) == 6

    def test_label_compatibility_restricts(self):
        g1 = Graph(2, [(0, 1)], [0, 1])
        g2 = Graph(2, [(0, 1)], [1, 1])
        prod, pairs = direct_product(g1, g2)
        # Only vertex 1 of g1 matches labels of g2's vertices.
        assert len(pairs) == 2

    def test_edge_rule(self):
        # K2 x K2 (uniform labels) = two disjoint edges.
        g = path_graph(2)
        prod, _ = direct_product(g, g)
        assert prod.n == 4
        assert prod.num_edges == 2

    def test_walk_correspondence_with_rw_kernel(self):
        """t-step walk count in the product equals the kernel's t-th term."""
        g1 = cycle_graph(4)
        g2 = cycle_graph(3)
        prod, _ = direct_product(g1, g2)
        a = prod.adjacency_matrix()
        # 1-step walks in the product = ones^T A ones.
        walks_1 = float(a.sum())
        k0 = RandomWalkKernel(steps=1, decay=1.0)._pair(g1, g2)
        # k = (t=0 term: |Vx|) + 1.0 * (t=1 term)
        assert np.isclose(k0 - prod.n, walks_1)


class TestCartesianProduct:
    def test_grid_from_paths(self):
        # P2 cartesian P3 = 2x3 grid: 6 vertices, 7 edges.
        prod, _ = cartesian_product(path_graph(2), path_graph(3))
        assert prod.n == 6
        assert prod.num_edges == 7

    def test_degree_sum_rule(self):
        # deg_{G * H}(u, v) = deg_G(u) + deg_H(v)
        g1, g2 = cycle_graph(4), path_graph(3)
        prod, pairs = cartesian_product(g1, g2)
        for i, (u, v) in enumerate(pairs):
            assert prod.degree(i) == g1.degree(u) + g2.degree(v)


class TestProductVertexPairs:
    def test_without_label_matching(self):
        g1 = Graph(2, [], [0, 1])
        g2 = Graph(3, [], [2, 2, 2])
        assert len(product_vertex_pairs(g1, g2, match_labels=False)) == 6

    def test_with_label_matching(self):
        g1 = Graph(2, [], [0, 2])
        g2 = Graph(3, [], [2, 2, 2])
        assert len(product_vertex_pairs(g1, g2, match_labels=True)) == 3
