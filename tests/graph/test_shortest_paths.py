"""Tests for all-pairs shortest paths (BFS and Floyd-Warshall agree,
and both agree with networkx)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings

from repro.graph import (
    UNREACHABLE,
    apsp_bfs,
    apsp_floyd_warshall,
    cycle_graph,
    grid_graph,
    path_graph,
    to_networkx,
)
from repro.graph.graph import Graph

from tests.conftest import random_graphs


class TestKnownDistances:
    def test_path(self):
        d = apsp_bfs(path_graph(4))
        assert d[0, 3] == 3
        assert d[1, 2] == 1

    def test_cycle_wraps(self):
        d = apsp_bfs(cycle_graph(6))
        assert d[0, 3] == 3
        assert d[0, 5] == 1

    def test_grid(self):
        d = apsp_bfs(grid_graph(3, 3))
        assert d[0, 8] == 4  # manhattan distance corner to corner

    def test_diagonal_zero(self):
        d = apsp_bfs(cycle_graph(5))
        assert np.all(np.diag(d) == 0)

    def test_disconnected_marked(self):
        g = Graph(3, [(0, 1)])
        d = apsp_bfs(g)
        assert d[0, 2] == UNREACHABLE
        assert d[2, 0] == UNREACHABLE


class TestImplementationsAgree:
    @given(random_graphs(min_nodes=1, max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_bfs_equals_floyd_warshall(self, g):
        assert np.array_equal(apsp_bfs(g), apsp_floyd_warshall(g))

    @given(random_graphs(min_nodes=2, max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, g):
        ours = apsp_bfs(g)
        nxg = to_networkx(g)
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for u in range(g.n):
            for v in range(g.n):
                expected = lengths.get(u, {}).get(v, UNREACHABLE)
                assert ours[u, v] == expected

    @given(random_graphs(min_nodes=1, max_nodes=9))
    @settings(max_examples=25, deadline=None)
    def test_symmetric(self, g):
        d = apsp_bfs(g)
        assert np.array_equal(d, d.T)
