"""Tests for BFS traversal primitives."""

import pytest
from hypothesis import given, settings

from repro.graph import (
    Graph,
    bfs_distances,
    bfs_layers,
    bfs_order,
    connected_components,
    cycle_graph,
    disjoint_union,
    path_graph,
    star_graph,
)

from tests.conftest import random_graphs


class TestBFSLayers:
    def test_star_layers(self):
        g = star_graph(5)
        layers = list(bfs_layers(g, 0))
        assert layers == [[0], [1, 2, 3, 4]]

    def test_path_layers_from_end(self):
        g = path_graph(4)
        assert list(bfs_layers(g, 0)) == [[0], [1], [2], [3]]

    def test_path_layers_from_middle(self):
        g = path_graph(5)
        assert list(bfs_layers(g, 2)) == [[2], [1, 3], [0, 4]]

    def test_unreachable_not_included(self):
        g = disjoint_union([path_graph(2), path_graph(2)])
        visited = [v for layer in bfs_layers(g, 0) for v in layer]
        assert sorted(visited) == [0, 1]

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            list(bfs_layers(path_graph(3), 3))

    def test_layers_sorted_within(self):
        g = star_graph(6)
        layers = list(bfs_layers(g, 0))
        assert layers[1] == sorted(layers[1])


class TestBFSOrder:
    def test_starts_at_source(self):
        g = cycle_graph(5)
        assert bfs_order(g, 3)[0] == 3

    def test_visits_component_once(self):
        g = cycle_graph(6)
        order = bfs_order(g, 0)
        assert sorted(order) == list(range(6))


class TestBFSDistances:
    def test_path_distances(self):
        g = path_graph(4)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable_is_minus_one(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distances(g, 0).tolist() == [0, 1, -1]

    def test_cycle_symmetry(self):
        g = cycle_graph(6)
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, 1, 2, 3, 2, 1]

    @given(random_graphs(min_nodes=1, max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_one_hop(self, g):
        # Distances of adjacent vertices differ by at most 1.
        for src in range(g.n):
            d = bfs_distances(g, src)
            for u, v in g.edges:
                if d[u] >= 0 and d[v] >= 0:
                    assert abs(d[u] - d[v]) <= 1


class TestConnectedComponents:
    def test_single_component(self):
        assert connected_components(cycle_graph(4)) == [[0, 1, 2, 3]]

    def test_multiple(self):
        g = disjoint_union([path_graph(2), path_graph(3)])
        assert connected_components(g) == [[0, 1], [2, 3, 4]]

    def test_isolated_vertices(self):
        g = Graph(3, [])
        assert connected_components(g) == [[0], [1], [2]]

    @given(random_graphs(min_nodes=1, max_nodes=10))
    @settings(max_examples=30, deadline=None)
    def test_partition(self, g):
        comps = connected_components(g)
        flat = [v for c in comps for v in c]
        assert sorted(flat) == list(range(g.n))
