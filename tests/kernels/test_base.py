"""Tests for gram-matrix utilities."""

import numpy as np
import pytest

from repro.kernels import normalize_gram, validate_gram


class TestNormalizeGram:
    def test_unit_diagonal(self):
        k = np.array([[4.0, 2.0], [2.0, 9.0]])
        n = normalize_gram(k)
        assert np.allclose(np.diag(n), 1.0)

    def test_cosine_value(self):
        k = np.array([[4.0, 2.0], [2.0, 9.0]])
        n = normalize_gram(k)
        assert np.isclose(n[0, 1], 2.0 / 6.0)

    def test_zero_row_handled(self):
        k = np.array([[0.0, 0.0], [0.0, 4.0]])
        n = normalize_gram(k)
        assert n[0, 1] == 0.0
        assert n[0, 0] == 1.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(6, 3))
        n = normalize_gram(a @ a.T)
        assert np.all(n <= 1.0 + 1e-9)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_gram(np.zeros((2, 3)))

    def test_preserves_psd(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(8, 4))
        validate_gram(normalize_gram(a @ a.T))


class TestValidateGram:
    def test_accepts_psd(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 5))
        validate_gram(a @ a.T)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            validate_gram(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_rejects_negative_definite(self):
        with pytest.raises(ValueError, match="PSD"):
            validate_gram(np.array([[1.0, 2.0], [2.0, 1.0]]))
