"""Determinism and dataset-order equivariance for every kernel.

A gram matrix must (a) be identical across repeated calls and (b)
permute consistently when the dataset order changes — these properties
are what make the CV protocol trustworthy.
"""

import numpy as np
import pytest

from repro.graph import complete_graph, cycle_graph, path_graph, star_graph
from repro.kernels import (
    DeepGraphKernel,
    GraphNeuralTangentKernel,
    GraphletKernel,
    HighOrderRandomWalkKernel,
    RandomWalkKernel,
    ReturnProbabilityKernel,
    ShortestPathKernel,
    SkipGramEmbedding,
    TreePlusPlusKernel,
    WeisfeilerLehmanKernel,
    WLOptimalAssignmentKernel,
)

GRAPHS = [
    cycle_graph(5).with_labels([0, 1, 0, 1, 0]),
    star_graph(6).with_labels([1, 0, 0, 0, 1, 1]),
    path_graph(4).with_labels([0, 0, 1, 1]),
    complete_graph(4).with_labels([0, 1, 0, 1]),
]

KERNELS = [
    GraphletKernel(k=3, samples=6, seed=0),
    ShortestPathKernel(),
    WeisfeilerLehmanKernel(2),
    RandomWalkKernel(steps=3),
    HighOrderRandomWalkKernel(steps=2, order=2),
    ReturnProbabilityKernel(steps=5, gamma=1.0),
    DeepGraphKernel(embedding=SkipGramEmbedding(dim=4, epochs=1, seed=0)),
    GraphNeuralTangentKernel(blocks=1, mlp_layers=1),
    TreePlusPlusKernel(depth=2, max_order=1),
    WLOptimalAssignmentKernel(h=2),
]
IDS = [type(k).__name__ for k in KERNELS]


@pytest.mark.parametrize("kernel", KERNELS, ids=IDS)
def test_repeated_calls_identical(kernel):
    assert np.allclose(kernel.gram(GRAPHS), kernel.gram(GRAPHS))


@pytest.mark.parametrize("kernel", KERNELS, ids=IDS)
def test_dataset_order_equivariance(kernel):
    """Permuting the dataset permutes the gram matrix accordingly."""
    perm = [2, 0, 3, 1]
    gram = kernel.gram(GRAPHS)
    gram_perm = kernel.gram([GRAPHS[i] for i in perm])
    expected = gram[np.ix_(perm, perm)]
    # DGK trains its skip-gram on the dataset's sentence order, so its
    # gram is deterministic (tested above) but not order-equivariant —
    # exactly like the original's word2vec stage.  We only require
    # finiteness for it here.
    if isinstance(kernel, DeepGraphKernel):
        assert np.all(np.isfinite(gram_perm))
    else:
        assert np.allclose(gram_perm, expected)


@pytest.mark.parametrize("kernel", KERNELS, ids=IDS)
def test_duplicate_graph_rows_identical(kernel):
    """A dataset containing the same graph twice gets identical rows."""
    graphs = [GRAPHS[0], GRAPHS[1], GRAPHS[0]]
    gram = kernel.gram(graphs)
    if isinstance(kernel, (GraphletKernel, DeepGraphKernel)):
        pytest.skip("sampled features differ per dataset position by design")
    assert np.isclose(gram[0, 0], gram[2, 2])
    assert np.isclose(gram[0, 1], gram[2, 1])
