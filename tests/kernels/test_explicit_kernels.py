"""Tests for the three explicit-feature kernels (GK, SP, WL)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    ExhaustiveGraphletKernel,
    GraphletKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
    normalize_gram,
    validate_gram,
)
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph

from tests.conftest import random_graphs


ALL_KERNELS = [
    GraphletKernel(k=3, samples=8, seed=0),
    ShortestPathKernel(),
    WeisfeilerLehmanKernel(h=2),
    ExhaustiveGraphletKernel(k=3),
]
IDS = ["gk", "sp", "wl", "gk-exact"]


@pytest.fixture
def labeled_graphs():
    return [
        cycle_graph(5).with_labels([0, 1, 0, 1, 0]),
        star_graph(5).with_labels([1, 0, 0, 0, 1]),
        path_graph(5).with_labels([0, 0, 1, 1, 0]),
        complete_graph(4).with_labels([0, 1, 0, 1]),
    ]


class TestGramProperties:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=IDS)
    def test_symmetric_psd(self, kernel, labeled_graphs):
        gram = kernel.gram(labeled_graphs)
        validate_gram(gram)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=IDS)
    def test_normalized_unit_diag(self, kernel, labeled_graphs):
        n = kernel.normalized_gram(labeled_graphs)
        assert np.allclose(np.diag(n), 1.0)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=IDS)
    def test_self_similarity_maximal_normalized(self, kernel, labeled_graphs):
        n = kernel.normalized_gram(labeled_graphs)
        assert np.all(n <= 1.0 + 1e-9)

    @pytest.mark.parametrize(
        "kernel",
        [ShortestPathKernel(), WeisfeilerLehmanKernel(h=2)],
        ids=["sp", "wl"],
    )
    def test_isomorphism_invariance(self, kernel):
        g = cycle_graph(6).with_labels([0, 1, 2, 0, 1, 2])
        h = g.relabel_vertices([2, 4, 0, 5, 1, 3])
        gram = kernel.gram([g, h])
        assert np.isclose(gram[0, 0], gram[1, 1])
        assert np.isclose(gram[0, 1], gram[0, 0])


class TestShortestPathKernel:
    def test_known_value_two_paths(self):
        # Two identical 2-edge paths with uniform labels: each vertex sees
        # (0,0,1) and (0,0,2) patterns; phi = {d1: 4, d2: 2} per graph.
        g = path_graph(3)
        gram = ShortestPathKernel().gram([g, g])
        assert gram[0, 1] == 4 * 4 + 2 * 2

    def test_labels_change_kernel(self):
        g1 = path_graph(3)
        g2 = path_graph(3).with_labels([1, 0, 1])
        gram = ShortestPathKernel().gram([g1, g2])
        assert gram[0, 1] < gram[0, 0]


class TestWLKernel:
    def test_h_zero_is_label_histogram(self):
        g1 = Graph(3, [], [0, 0, 1])
        g2 = Graph(3, [], [0, 1, 1])
        gram = WeisfeilerLehmanKernel(h=0).gram([g1, g2])
        # phi1 = [2, 1], phi2 = [1, 2] -> dot = 4
        assert gram[0, 1] == 4
        assert gram[0, 0] == 5

    def test_deeper_h_refines(self):
        g1 = path_graph(4)
        g2 = star_graph(4)
        n0 = WeisfeilerLehmanKernel(h=0).normalized_gram([g1, g2])
        n2 = WeisfeilerLehmanKernel(h=2).normalized_gram([g1, g2])
        # Same degree-0 labels (all zero): indistinguishable at h=0,
        # separated by refinement.
        assert np.isclose(n0[0, 1], 1.0)
        assert n2[0, 1] < 1.0


class TestGraphletKernelExact:
    def test_feature_map_shape(self):
        graphs = [complete_graph(4), cycle_graph(5)]
        phi = ExhaustiveGraphletKernel(k=3).feature_map(graphs)
        assert phi.shape[0] == 2

    def test_triangle_count_k4(self):
        phi = ExhaustiveGraphletKernel(k=3).feature_map([complete_graph(4)])
        assert phi.sum() == 4

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ExhaustiveGraphletKernel(k=0)


class TestPSDProperty:
    @given(
        st.lists(random_graphs(min_nodes=2, max_nodes=6), min_size=2, max_size=5)
    )
    @settings(max_examples=15, deadline=None)
    def test_wl_gram_psd_random_sets(self, graphs):
        validate_gram(WeisfeilerLehmanKernel(h=1).gram(graphs))

    @given(
        st.lists(random_graphs(min_nodes=2, max_nodes=6), min_size=2, max_size=5)
    )
    @settings(max_examples=15, deadline=None)
    def test_sp_gram_psd_random_sets(self, graphs):
        validate_gram(ShortestPathKernel().gram(graphs))
