"""Tests for the implicit kernels: random walk, RetGK, DGK, GNTK."""

import numpy as np
import pytest

from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.kernels import (
    DeepGraphKernel,
    GraphNeuralTangentKernel,
    HighOrderRandomWalkKernel,
    RandomWalkKernel,
    ReturnProbabilityKernel,
    SkipGramEmbedding,
    normalize_gram,
    return_probability_features,
    validate_gram,
)


@pytest.fixture
def graphs():
    return [
        cycle_graph(5).with_labels([0, 1, 0, 1, 0]),
        star_graph(5).with_labels([1, 0, 0, 0, 1]),
        path_graph(4).with_labels([0, 0, 1, 1]),
    ]


class TestRandomWalkKernel:
    def test_psd(self, graphs):
        validate_gram(RandomWalkKernel(steps=3).gram(graphs))

    def test_label_mismatch_zero(self):
        g1 = Graph(2, [(0, 1)], [0, 0])
        g2 = Graph(2, [(0, 1)], [1, 1])
        gram = RandomWalkKernel(steps=3).gram([g1, g2])
        assert gram[0, 1] == 0.0

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkKernel(steps=0)

    def test_walk_count_hand_check(self):
        # Single edge, uniform labels: product graph of two K2s has
        # 4 compatible pairs; t=0 term = 4; one step: each pair (u,v)
        # reaches (u', v') for the unique neighbors: W x = x -> sum 4.
        g = Graph(2, [(0, 1)])
        k = RandomWalkKernel(steps=1, decay=0.5)
        val = k._pair(g, g)
        assert val == 4 + 0.5 * 4

    def test_isomorphism_invariance(self):
        g = cycle_graph(6)
        h = g.relabel_vertices([3, 0, 5, 1, 4, 2])
        gram = RandomWalkKernel(steps=4).gram([g, h])
        assert np.isclose(gram[0, 0], gram[1, 1])
        assert np.isclose(gram[0, 1], gram[0, 0])

    def test_high_order_differs_from_first_order(self, graphs):
        k1 = RandomWalkKernel(steps=3).gram(graphs)
        k2 = HighOrderRandomWalkKernel(steps=3, order=2).gram(graphs)
        assert not np.allclose(normalize_gram(k1), normalize_gram(k2))


class TestReturnProbabilities:
    def test_feature_shape(self):
        f = return_probability_features(cycle_graph(5), steps=4)
        assert f.shape == (5, 4)

    def test_bipartite_no_odd_returns(self):
        f = return_probability_features(path_graph(2), steps=4)
        # Walks on a single edge return only at even steps.
        assert np.allclose(f[:, 0], 0.0)
        assert np.allclose(f[:, 1], 1.0)

    def test_symmetric_vertices_equal(self):
        f = return_probability_features(cycle_graph(6), steps=5)
        assert np.allclose(f, f[0][None, :])

    def test_probabilities_bounded(self):
        f = return_probability_features(star_graph(6), steps=6)
        assert np.all(f >= 0) and np.all(f <= 1)

    def test_kernel_psd(self, graphs):
        gram = ReturnProbabilityKernel(steps=6).gram(graphs)
        validate_gram(gram, tol=1e-6)

    def test_isomorphism_invariance(self):
        g = cycle_graph(6).with_labels([0, 1] * 3)
        h = g.relabel_vertices([2, 3, 4, 5, 0, 1])
        gram = ReturnProbabilityKernel(steps=5, gamma=1.0).gram([g, h])
        assert np.isclose(gram[0, 1], gram[0, 0])

    def test_labels_gate_similarity(self):
        g1 = cycle_graph(4).with_labels([0] * 4)
        g2 = cycle_graph(4).with_labels([1] * 4)
        gram = ReturnProbabilityKernel(steps=4, gamma=1.0).gram([g1, g2])
        assert gram[0, 1] == 0.0
        assert gram[0, 0] > 0.0


class TestDeepGraphKernel:
    def test_psd(self, graphs):
        gram = DeepGraphKernel(
            embedding=SkipGramEmbedding(dim=4, epochs=1, seed=0)
        ).gram(graphs)
        validate_gram(gram, tol=1e-6)

    def test_deterministic(self, graphs):
        k = lambda: DeepGraphKernel(
            embedding=SkipGramEmbedding(dim=4, epochs=1, seed=0)
        ).gram(graphs)
        assert np.allclose(k(), k())

    def test_skipgram_shapes(self):
        emb = SkipGramEmbedding(dim=8, epochs=1, seed=0)
        e = emb.fit([[0, 1, 2, 1], [2, 3]], vocab_size=4)
        assert e.shape == (4, 8)

    def test_skipgram_cooccurring_tokens_closer(self):
        # Tokens 0/1 always co-occur; 2/3 always co-occur; mixed never.
        sentences = [[0, 1, 0, 1]] * 30 + [[2, 3, 2, 3]] * 30
        emb = SkipGramEmbedding(dim=8, epochs=5, lr=0.1, seed=0)
        e = emb.fit(sentences, vocab_size=4)
        e = e / np.linalg.norm(e, axis=1, keepdims=True)
        assert e[0] @ e[1] > e[0] @ e[2]

    def test_empty_sentence_handled(self):
        emb = SkipGramEmbedding(dim=4, epochs=1, seed=0)
        e = emb.fit([[]], vocab_size=3)
        assert e.shape == (3, 4)


class TestGNTK:
    def test_psd(self, graphs):
        validate_gram(GraphNeuralTangentKernel(blocks=2, mlp_layers=2).gram(graphs))

    def test_isomorphism_invariance(self):
        g = star_graph(5).with_labels([1, 0, 0, 0, 2])
        h = g.relabel_vertices([4, 0, 1, 2, 3])
        gram = GraphNeuralTangentKernel(blocks=2, mlp_layers=1).gram([g, h])
        assert np.isclose(gram[0, 1], gram[0, 0], rtol=1e-10)

    def test_structure_sensitivity(self):
        gram = GraphNeuralTangentKernel(blocks=2, mlp_layers=2).normalized_gram(
            [path_graph(6), star_graph(6), path_graph(6)]
        )
        assert gram[0, 2] > gram[0, 1]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GraphNeuralTangentKernel(blocks=0)

    def test_no_degree_scaling_variant(self, graphs):
        a = GraphNeuralTangentKernel(scale_by_degree=True).gram(graphs)
        b = GraphNeuralTangentKernel(scale_by_degree=False).gram(graphs)
        assert not np.allclose(a, b)
