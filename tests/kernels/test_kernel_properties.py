"""Cross-kernel semantic properties beyond PSD-ness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, cycle_graph, disjoint_union, path_graph, star_graph
from repro.kernels import (
    GraphNeuralTangentKernel,
    RandomWalkKernel,
    ReturnProbabilityKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
    normalize_gram,
)

from tests.conftest import random_graphs


class TestWLDepthBehaviour:
    def test_gram_entries_monotone_in_h(self):
        """WL features accumulate over iterations, so un-normalised gram
        entries are non-decreasing in h."""
        graphs = [cycle_graph(6), star_graph(6), path_graph(6)]
        prev = None
        for h in range(4):
            gram = WeisfeilerLehmanKernel(h).gram(graphs)
            if prev is not None:
                assert np.all(gram >= prev - 1e-9)
            prev = gram

    def test_wl_blind_spot_regular_pair(self):
        """C6 vs two triangles is the textbook WL-indistinguishable pair
        (both 2-regular, one label class forever) — the kernel must see
        them as identical, while the shortest-path kernel separates them
        (distance-2/3 pairs exist only in C6)."""
        c6 = cycle_graph(6)
        two_triangles = disjoint_union([cycle_graph(3), cycle_graph(3)])
        wl = WeisfeilerLehmanKernel(3).normalized_gram([c6, two_triangles])
        assert np.isclose(wl[0, 1], 1.0)
        sp = ShortestPathKernel().normalized_gram([c6, two_triangles])
        assert sp[0, 1] < 1.0 - 1e-9


class TestSPLocality:
    def test_unreachable_pairs_dont_contribute(self):
        connected = path_graph(4)
        split = disjoint_union([path_graph(2), path_graph(2)])
        gram = ShortestPathKernel().gram([connected, split])
        # The split graph has fewer path pairs -> smaller self-similarity.
        assert gram[1, 1] < gram[0, 0]

    def test_triangle_vs_path_overlap(self):
        # Uniform labels: triangle has only distance-1 pairs; P3 has
        # distance-1 and distance-2 pairs. Overlap = product of d1 counts.
        tri = cycle_graph(3)
        p3 = path_graph(3)
        gram = ShortestPathKernel().gram([tri, p3])
        # tri: 6 ordered d1 pairs; p3: 4 ordered d1 pairs -> 24.
        assert gram[0, 1] == 24


class TestRandomWalkSemantics:
    def test_more_steps_never_decreases(self):
        g1 = cycle_graph(5)
        g2 = cycle_graph(6)
        vals = [
            RandomWalkKernel(steps=s, decay=0.5)._pair(g1, g2) for s in (1, 2, 4)
        ]
        assert vals[0] <= vals[1] <= vals[2]

    def test_decay_dampens(self):
        g = cycle_graph(5)
        lo = RandomWalkKernel(steps=4, decay=0.01)._pair(g, g)
        hi = RandomWalkKernel(steps=4, decay=0.5)._pair(g, g)
        assert lo < hi


class TestRetGKSemantics:
    def test_structural_roles_cluster(self):
        """Star center vs leaf: very different return probabilities."""
        from repro.kernels import return_probability_features

        f = return_probability_features(star_graph(7), steps=6)
        center, leaf = f[0], f[1]
        other_leaf = f[2]
        assert np.linalg.norm(leaf - other_leaf) < 1e-12
        assert np.linalg.norm(center - leaf) > 0.1

    def test_self_similarity_largest_normalized(self):
        graphs = [cycle_graph(5), star_graph(5), path_graph(5)]
        gram = normalize_gram(ReturnProbabilityKernel(steps=6).gram(graphs))
        assert np.all(gram <= 1.0 + 1e-9)


class TestGNTKSemantics:
    def test_labels_dominate_at_depth_zero_features(self):
        same = Graph(2, [(0, 1)], [0, 0])
        diff = Graph(2, [(0, 1)], [1, 1])
        gram = GraphNeuralTangentKernel(blocks=1, mlp_layers=1).gram([same, diff])
        # Cross term only sees label-mismatched pairs at init.
        assert gram[0, 1] < gram[0, 0]

    @given(st.lists(random_graphs(min_nodes=2, max_nodes=6), min_size=2, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_normalized_bounded(self, graphs):
        gram = normalize_gram(
            GraphNeuralTangentKernel(blocks=1, mlp_layers=1).gram(graphs)
        )
        assert np.all(gram <= 1.0 + 1e-7)
        assert np.all(gram >= -1.0 - 1e-7)
