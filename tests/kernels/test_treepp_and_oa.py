"""Tests for the Tree++ path-pattern kernel and the WL optimal
assignment kernel (paper references [8] and [21])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import PathPatternVertexFeatures, extract_vertex_feature_matrices
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.kernels import (
    TreePlusPlusKernel,
    WLOptimalAssignmentKernel,
    validate_gram,
)

from tests.conftest import random_graphs


class TestPathPatternFeatures:
    def test_counts_on_path(self):
        g = Graph(3, [(0, 1), (1, 2)], [0, 1, 0])
        counts = PathPatternVertexFeatures(depth=2).extract([g])[0]
        root0 = counts[0]
        # root 0: paths (0), (0,1), (0,1,0)
        assert root0[("path", (0,))] == 1
        assert root0[("path", (0, 1))] == 1
        assert root0[("path", (0, 1, 0))] == 1
        assert sum(root0.values()) == 3

    def test_depth_truncates(self):
        g = path_graph(6)
        shallow = PathPatternVertexFeatures(depth=1).extract([g])[0]
        deep = PathPatternVertexFeatures(depth=4).extract([g])[0]
        assert sum(shallow[0].values()) < sum(deep[0].values())

    def test_super_paths_change_alphabet(self):
        g = cycle_graph(6)
        raw = PathPatternVertexFeatures(depth=2, super_path_h=0).extract([g])[0]
        sup = PathPatternVertexFeatures(depth=2, super_path_h=2).extract([g])[0]
        assert set(raw[0]) != set(sup[0])

    def test_bfs_tree_visits_each_vertex_once(self):
        # In a cycle, the BFS tree from any root reaches n vertices, so
        # n path patterns (including the root's own).
        g = cycle_graph(5)
        counts = PathPatternVertexFeatures(depth=4).extract([g])[0]
        assert sum(counts[0].values()) == 5

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PathPatternVertexFeatures(depth=0)
        with pytest.raises(ValueError):
            PathPatternVertexFeatures(depth=1, super_path_h=-1)

    def test_plugs_into_deepmap(self, small_dataset):
        from repro.core import DeepMapClassifier

        graphs, y = small_dataset
        model = DeepMapClassifier(
            PathPatternVertexFeatures(depth=2), r=3, epochs=3, seed=0
        )
        model.fit(graphs, y)
        assert model.predict(graphs).shape == (len(graphs),)


class TestTreePlusPlusKernel:
    def test_psd(self):
        graphs = [cycle_graph(5), star_graph(5), path_graph(4)]
        validate_gram(TreePlusPlusKernel(depth=2, max_order=1).gram(graphs))

    def test_isomorphism_invariance(self):
        g = star_graph(6).with_labels([2, 0, 0, 1, 1, 0])
        h = g.relabel_vertices([3, 1, 5, 0, 4, 2])
        gram = TreePlusPlusKernel(depth=2, max_order=1).gram([g, h])
        assert np.isclose(gram[0, 1], gram[0, 0])

    def test_higher_order_adds_similarity_mass(self):
        graphs = [cycle_graph(5), cycle_graph(6)]
        k0 = TreePlusPlusKernel(depth=2, max_order=0).gram(graphs)
        k2 = TreePlusPlusKernel(depth=2, max_order=2).gram(graphs)
        assert np.all(k2 >= k0)

    def test_distinguishes_structures(self):
        from repro.kernels import normalize_gram

        gram = normalize_gram(
            TreePlusPlusKernel(depth=2, max_order=1).gram(
                [path_graph(6), star_graph(6), path_graph(6)]
            )
        )
        assert gram[0, 2] > gram[0, 1]


class TestWLOptimalAssignment:
    def test_psd(self):
        graphs = [cycle_graph(5), star_graph(5), path_graph(4), complete_graph(4)]
        validate_gram(WLOptimalAssignmentKernel(h=2).gram(graphs))

    def test_self_value_is_vertices_times_iterations(self):
        g = cycle_graph(5)
        gram = WLOptimalAssignmentKernel(h=3).gram([g])
        assert gram[0, 0] == 5 * 4  # n vertices matched at h+1 levels

    def test_bounded_by_smaller_graph(self):
        g1 = cycle_graph(4)
        g2 = cycle_graph(9)
        gram = WLOptimalAssignmentKernel(h=2).gram([g1, g2])
        assert gram[0, 1] <= 4 * 3  # at most min(n1, n2) per level

    def test_isomorphism_invariance(self):
        g = path_graph(6).with_labels([0, 1, 2, 2, 1, 0])
        h = g.relabel_vertices([5, 4, 3, 2, 1, 0])
        gram = WLOptimalAssignmentKernel(h=2).gram([g, h])
        assert gram[0, 1] == gram[0, 0]

    @given(st.lists(random_graphs(min_nodes=2, max_nodes=6), min_size=2, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_psd_random(self, graphs):
        validate_gram(WLOptimalAssignmentKernel(h=1).gram(graphs))

    def test_rejects_negative_h(self):
        with pytest.raises(ValueError):
            WLOptimalAssignmentKernel(h=-1)
