"""Tests for BatchNorm, EarlyStopping, gradient clipping, weight decay."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Dense,
    EarlyStopping,
    Parameter,
    ReLU,
    RMSprop,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    Trainer,
    clip_gradients,
)


class TestBatchNorm:
    def test_training_normalises(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(200, 4))
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_track(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm(2, momentum=0.5)
        for _ in range(30):
            bn.forward(rng.normal(5.0, 1.0, size=(64, 2)), training=True)
        assert np.allclose(bn.running_mean, 5.0, atol=0.3)

    def test_inference_uses_running_stats(self):
        bn = BatchNorm(2)
        bn.running_mean = np.array([1.0, 2.0])
        bn.running_var = np.array([4.0, 9.0])
        x = np.array([[1.0, 2.0]])
        out = bn.forward(x, training=False)
        assert np.allclose(out, 0.0, atol=1e-3)

    def test_3d_input(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm(3)
        out = bn.forward(rng.normal(size=(4, 5, 3)), training=True)
        assert out.shape == (4, 5, 3)
        assert np.allclose(out.mean(axis=(0, 1)), 0.0, atol=1e-7)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        net = Sequential([Dense(3, 4, rng=0), BatchNorm(4), ReLU(), Dense(4, 2, rng=1)])
        x = rng.normal(size=(8, 3))
        y = np.array([0, 1] * 4)
        lf = SoftmaxCrossEntropy()

        def loss():
            return lf.forward(net.forward(x, training=True), y)

        # BatchNorm in training mode recomputes batch stats per call, so
        # finite differences are consistent with backward.
        loss()
        net.zero_grad()
        net.backward(lf.backward())
        eps, worst = 1e-6, 0.0
        # Freeze running-stat updates' effect by reusing training mode.
        for p in net.parameters():
            flat, grad = p.value.ravel(), p.grad.ravel()
            for i in range(0, flat.size, max(1, flat.size // 7)):
                orig = flat[i]
                flat[i] = orig + eps
                up = loss()
                flat[i] = orig - eps
                down = loss()
                flat[i] = orig
                worst = max(worst, abs((up - down) / (2 * eps) - grad[i]))
        assert worst < 1e-6

    def test_rejects_wrong_width(self):
        bn = BatchNorm(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 4)))


class TestEarlyStopping:
    def _history(self, losses):
        from repro.nn import History

        h = History()
        h.loss = list(losses)
        return h

    def test_stops_on_plateau(self):
        es = EarlyStopping(patience=2, monitor="loss")
        h = self._history([])
        stops = []
        for loss in (1.0, 0.5, 0.5, 0.5):
            h.loss.append(loss)
            stops.append(es.should_stop(h))
        assert stops == [False, False, False, True]

    def test_resets_on_improvement(self):
        es = EarlyStopping(patience=2, monitor="loss")
        h = self._history([])
        for loss in (1.0, 1.0, 0.5, 0.5):
            h.loss.append(loss)
            assert not es.should_stop(h)

    def test_val_accuracy_monitor(self):
        from repro.nn import History

        es = EarlyStopping(patience=1, monitor="val_accuracy")
        h = History()
        h.val_accuracy = [0.5]
        assert not es.should_stop(h)
        h.val_accuracy.append(0.5)
        assert es.should_stop(h)

    def test_trainer_integration(self):
        rng = np.random.default_rng(0)
        x = np.ones((20, 2))  # unlearnable: loss plateaus immediately
        y = np.array([0, 1] * 10)
        net = Sequential([Dense(2, 4, rng=0), ReLU(), Dense(4, 2, rng=1)])
        trainer = Trainer(
            epochs=50, seed=0, early_stopping=EarlyStopping(patience=3)
        )
        hist = trainer.fit(net, x, y)
        assert len(hist.loss) < 50

    def test_rejects_unknown_monitor(self):
        with pytest.raises(ValueError):
            EarlyStopping(monitor="f1")


class TestClipAndDecay:
    def test_clip_scales_to_max_norm(self):
        p = Parameter(np.zeros(3))
        p.grad[:] = [3.0, 4.0, 0.0]  # norm 5
        pre = clip_gradients([p], max_norm=1.0)
        assert np.isclose(pre, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad[:] = [0.3, 0.4]
        clip_gradients([p], max_norm=1.0)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            p.zero_grad()
            opt.step()
        assert abs(p.value[0]) < 0.2

    def test_rmsprop_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = RMSprop([p], lr=0.01, weight_decay=0.1)
        p.grad[:] = [0.0]
        opt.step()
        assert p.value[0] < 1.0

    def test_trainer_max_grad_norm(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 2)) * 100  # large inputs -> large grads
        y = (x[:, 0] > 0).astype(int)
        net = Sequential([Dense(2, 4, rng=0), ReLU(), Dense(4, 2, rng=1)])
        hist = Trainer(epochs=3, seed=0, max_grad_norm=1.0).fit(net, x, y)
        assert all(np.isfinite(l) for l in hist.loss)
