"""Finite-difference gradient verification for every layer.

Each test builds a tiny network ending in softmax cross-entropy, runs one
backward pass, and compares every parameter gradient (and the input
gradient) against central finite differences.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaskedSumPool1D,
    MeanPool1D,
    ReLU,
    Sequential,
    Sigmoid,
    SoftmaxCrossEntropy,
    SumPool1D,
    Tanh,
)

EPS = 1e-6
TOL = 1e-7


def check_param_gradients(net, x, y):
    """Max |analytic - numeric| over a sample of parameter entries."""
    loss_fn = SoftmaxCrossEntropy()

    def loss():
        return loss_fn.forward(net.forward(x, training=False), y)

    loss()
    net.zero_grad()
    net.backward(loss_fn.backward())
    worst = 0.0
    for p in net.parameters():
        flat = p.value.ravel()
        grad = p.grad.ravel()
        step = max(1, flat.size // 11)
        for i in range(0, flat.size, step):
            orig = flat[i]
            flat[i] = orig + EPS
            up = loss()
            flat[i] = orig - EPS
            down = loss()
            flat[i] = orig
            worst = max(worst, abs((up - down) / (2 * EPS) - grad[i]))
    return worst


def check_input_gradient(layer, x, out_grad=None):
    """Finite-difference check of backward() w.r.t. the input."""
    out = layer.forward(x, training=False)
    if out_grad is None:
        rng = np.random.default_rng(0)
        out_grad = rng.normal(size=out.shape)
    dx = layer.backward(out_grad)

    def scalar(xv):
        return float((layer.forward(xv, training=False) * out_grad).sum())

    worst = 0.0
    flat = x.ravel()
    step = max(1, flat.size // 13)
    for i in range(0, flat.size, step):
        orig = flat[i]
        flat[i] = orig + EPS
        up = scalar(x)
        flat[i] = orig - EPS
        down = scalar(x)
        flat[i] = orig
        worst = max(worst, abs((up - down) / (2 * EPS) - dx.ravel()[i]))
    return worst


class TestDense:
    def test_param_gradients(self):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(4, 5, rng=1), ReLU(), Dense(5, 3, rng=2)])
        x = rng.normal(size=(6, 4))
        y = np.array([0, 1, 2, 0, 1, 2])
        assert check_param_gradients(net, x, y) < TOL

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng=0)
        assert check_input_gradient(layer, rng.normal(size=(5, 4))) < TOL

    def test_no_bias_variant(self):
        rng = np.random.default_rng(2)
        net = Sequential([Dense(3, 4, use_bias=False, rng=0), Dense(4, 2, rng=1)])
        x = rng.normal(size=(4, 3))
        y = np.array([0, 1, 0, 1])
        assert check_param_gradients(net, x, y) < TOL

    def test_high_rank_input(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 2, rng=0)
        assert check_input_gradient(layer, rng.normal(size=(2, 3, 4))) < TOL


class TestConv1D:
    @pytest.mark.parametrize("kernel,stride", [(3, 3), (2, 1), (1, 1), (3, 2)])
    def test_param_gradients(self, kernel, stride):
        rng = np.random.default_rng(0)
        net = Sequential(
            [
                Conv1D(2, 4, kernel_size=kernel, stride=stride, rng=1),
                ReLU(),
                SumPool1D(),
                Dense(4, 2, rng=2),
            ]
        )
        x = rng.normal(size=(3, 9, 2))
        y = np.array([0, 1, 0])
        assert check_param_gradients(net, x, y) < TOL

    def test_input_gradient_overlapping_windows(self):
        rng = np.random.default_rng(1)
        layer = Conv1D(3, 2, kernel_size=3, stride=1, rng=0)
        assert check_input_gradient(layer, rng.normal(size=(2, 7, 3))) < TOL

    def test_no_bias_zero_maps_to_zero(self):
        layer = Conv1D(3, 4, kernel_size=2, stride=2, use_bias=False, rng=0)
        out = layer.forward(np.zeros((1, 6, 3)))
        assert np.allclose(out, 0.0)

    def test_rejects_short_input(self):
        layer = Conv1D(2, 2, kernel_size=5, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 3, 2)))

    def test_rejects_wrong_channels(self):
        layer = Conv1D(2, 2, kernel_size=1, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 3, 5)))


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid])
    def test_input_gradient(self, layer_cls):
        rng = np.random.default_rng(2)
        layer = layer_cls()
        # offset from 0 to avoid the ReLU kink
        x = rng.normal(size=(4, 5)) + 0.1 * np.sign(rng.normal(size=(4, 5)))
        assert check_input_gradient(layer, x) < 1e-6


class TestPooling:
    def test_sum_pool_gradient(self):
        rng = np.random.default_rng(3)
        assert check_input_gradient(SumPool1D(), rng.normal(size=(2, 5, 3))) < TOL

    def test_mean_pool_gradient(self):
        rng = np.random.default_rng(4)
        assert check_input_gradient(MeanPool1D(), rng.normal(size=(2, 5, 3))) < TOL

    def test_flatten_gradient(self):
        rng = np.random.default_rng(5)
        assert check_input_gradient(Flatten(), rng.normal(size=(2, 4, 3))) < TOL

    def test_masked_sum_gradient(self):
        rng = np.random.default_rng(6)
        layer = MaskedSumPool1D()
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=float)
        layer.set_mask(mask)
        x = rng.normal(size=(2, 4, 3))
        out = layer.forward(x)
        assert np.allclose(out[0], x[0, :2].sum(axis=0))
        grad = rng.normal(size=out.shape)
        dx = layer.backward(grad)
        assert np.allclose(dx[0, 2:], 0.0)


def check_training_input_gradient(layer, x):
    """Finite-difference check of backward() in *training* mode.

    In training mode BatchNorm's output depends on the batch statistics
    of ``x`` itself, so the Jacobian includes the mean/var terms; the
    running-statistics updates it performs along the way do not affect
    the training-mode output and are irrelevant to the check.
    """
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    out_grad = rng.normal(size=out.shape)
    dx = layer.backward(out_grad)

    def scalar(xv):
        return float((layer.forward(xv, training=True) * out_grad).sum())

    worst = 0.0
    flat = x.ravel()
    step = max(1, flat.size // 13)
    for i in range(0, flat.size, step):
        orig = flat[i]
        flat[i] = orig + EPS
        up = scalar(x)
        flat[i] = orig - EPS
        down = scalar(x)
        flat[i] = orig
        worst = max(worst, abs((up - down) / (2 * EPS) - dx.ravel()[i]))
    return worst


class TestBatchNorm:
    @staticmethod
    def _with_nontrivial_stats(layer, rng):
        # Non-default running stats so inference mode isn't an identity.
        layer.running_mean = rng.normal(size=layer.running_mean.size)
        layer.running_var = rng.uniform(0.5, 2.0, size=layer.running_var.size)
        return layer

    def test_param_gradients_running_stats_mode(self):
        rng = np.random.default_rng(8)
        net = Sequential(
            [Dense(4, 5, rng=1), BatchNorm(5), ReLU(), Dense(5, 3, rng=2)]
        )
        self._with_nontrivial_stats(net.layers[1], rng)
        x = rng.normal(size=(6, 4))
        y = np.array([0, 1, 2, 0, 1, 2])
        assert check_param_gradients(net, x, y) < TOL

    def test_input_gradient_running_stats_mode(self):
        rng = np.random.default_rng(9)
        layer = self._with_nontrivial_stats(BatchNorm(3), rng)
        assert check_input_gradient(layer, rng.normal(size=(5, 3))) < TOL

    def test_input_gradient_batch_stats_mode(self):
        """Training mode: the mean/var dependence on x is in the Jacobian."""
        rng = np.random.default_rng(10)
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        assert check_training_input_gradient(layer, x) < 1e-6

    def test_input_gradient_batch_stats_mode_3d(self):
        rng = np.random.default_rng(11)
        layer = BatchNorm(4)
        x = rng.normal(size=(3, 5, 4))
        assert check_training_input_gradient(layer, x) < 1e-6


class TestMaskedSumPoolEdgeCases:
    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(12)
        layer = MaskedSumPool1D()
        layer.set_mask(np.array([[1, 1, 0, 0], [1, 0, 1, 0]], dtype=float))
        assert check_input_gradient(layer, rng.normal(size=(2, 4, 3))) < TOL

    def test_fully_padded_graph(self):
        """An all-zero mask row (empty graph) pools and backprops to zero."""
        rng = np.random.default_rng(13)
        layer = MaskedSumPool1D()
        layer.set_mask(np.array([[0, 0, 0], [1, 1, 1]], dtype=float))
        x = rng.normal(size=(2, 3, 2))
        out = layer.forward(x)
        assert np.array_equal(out[0], np.zeros(2))
        dx = layer.backward(rng.normal(size=out.shape))
        assert np.array_equal(dx[0], np.zeros((3, 2)))
        assert check_input_gradient(layer, x) < TOL

    def test_single_valid_position(self):
        rng = np.random.default_rng(14)
        layer = MaskedSumPool1D()
        layer.set_mask(np.array([[0, 1, 0, 0]], dtype=float))
        x = rng.normal(size=(1, 4, 3))
        assert np.allclose(layer.forward(x)[0], x[0, 1])
        assert check_input_gradient(layer, x) < TOL


class TestEndToEndStack:
    def test_deepmap_like_stack(self):
        """The full Fig. 4-shaped stack has exact gradients."""
        rng = np.random.default_rng(7)
        net = Sequential(
            [
                Conv1D(5, 8, kernel_size=3, stride=3, use_bias=False, rng=0),
                ReLU(),
                Conv1D(8, 4, kernel_size=1, use_bias=False, rng=1),
                ReLU(),
                SumPool1D(),
                Dense(4, 16, rng=2),
                ReLU(),
                Dense(16, 3, rng=3),
            ]
        )
        x = rng.normal(size=(4, 12, 5))
        y = np.array([0, 1, 2, 1])
        assert check_param_gradients(net, x, y) < TOL
