"""Behavioural tests for layers: shapes, modes, dropout statistics."""

import numpy as np
import pytest

from repro.nn import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MeanPool1D,
    ReLU,
    Sigmoid,
    SumPool1D,
    Tanh,
    softmax,
)
from repro.nn.losses import SoftmaxCrossEntropy


class TestDenseShapes:
    def test_2d(self):
        layer = Dense(4, 7, rng=0)
        assert layer.forward(np.zeros((3, 4))).shape == (3, 7)

    def test_3d(self):
        layer = Dense(4, 7, rng=0)
        assert layer.forward(np.zeros((2, 5, 4))).shape == (2, 5, 7)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestConvShapes:
    def test_output_length_stride_equals_kernel(self):
        layer = Conv1D(2, 3, kernel_size=4, stride=4, rng=0)
        assert layer.forward(np.zeros((1, 12, 2))).shape == (1, 3, 3)

    def test_output_length_overlapping(self):
        layer = Conv1D(2, 3, kernel_size=3, stride=1, rng=0)
        assert layer.forward(np.zeros((1, 10, 2))).shape == (1, 8, 3)

    def test_output_length_helper(self):
        layer = Conv1D(1, 1, kernel_size=3, stride=2, rng=0)
        assert layer.output_length(9) == 4


class TestActivationValues:
    def test_relu(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert out.tolist() == [0.0, 0.0, 2.0]

    def test_tanh_range(self):
        out = Tanh().forward(np.array([-100.0, 100.0]))
        assert np.allclose(out, [-1.0, 1.0])

    def test_sigmoid_extremes_stable(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))


class TestDropout:
    def test_inference_identity(self):
        x = np.ones((10, 10))
        assert np.array_equal(Dropout(0.5, rng=0).forward(x, training=False), x)

    def test_training_zeroes_fraction(self):
        x = np.ones((100, 100))
        out = Dropout(0.5, rng=0).forward(x, training=True)
        zero_frac = np.mean(out == 0)
        assert 0.45 < zero_frac < 0.55

    def test_inverted_scaling_preserves_mean(self):
        x = np.ones((200, 200))
        out = Dropout(0.3, rng=0).forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0, out == 0)

    def test_rate_zero_noop(self):
        x = np.ones((5, 5))
        assert np.array_equal(Dropout(0.0).forward(x, training=True), x)

    def test_rejects_rate_one(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestPoolingValues:
    def test_sum(self):
        x = np.arange(12.0).reshape(1, 4, 3)
        assert np.allclose(SumPool1D().forward(x)[0], x[0].sum(axis=0))

    def test_mean(self):
        x = np.arange(12.0).reshape(1, 4, 3)
        assert np.allclose(MeanPool1D().forward(x)[0], x[0].mean(axis=0))

    def test_flatten_roundtrip(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        f = Flatten()
        out = f.forward(x)
        assert out.shape == (2, 12)
        assert np.array_equal(f.backward(out), x)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 4))
        assert np.allclose(softmax(logits).sum(axis=1), 1.0)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_c(self):
        logits = np.zeros((4, 3))
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0, 1, 2, 0]))
        assert np.isclose(loss, np.log(3))

    def test_gradient_sums_to_zero_rows(self):
        lf = SoftmaxCrossEntropy()
        logits = np.random.default_rng(1).normal(size=(6, 3))
        lf.forward(logits, np.array([0, 1, 2, 0, 1, 2]))
        assert np.allclose(lf.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_rejects_bad_targets(self):
        lf = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            lf.forward(np.zeros((2, 2)), np.array([0, 5]))

    def test_rejects_bad_shapes(self):
        lf = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            lf.forward(np.zeros((2, 2)), np.array([0, 1, 1]))
