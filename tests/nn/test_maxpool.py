"""Tests for max pooling layers."""

import numpy as np
import pytest

from repro.nn import GlobalMaxPool1D, MaxPool1D


class TestMaxPool1D:
    def test_values(self):
        x = np.array([[[1.0], [5.0], [3.0], [2.0]]])
        out = MaxPool1D(pool_size=2).forward(x)
        assert out[0, :, 0].tolist() == [5.0, 3.0]

    def test_output_shape_with_stride(self):
        x = np.zeros((2, 9, 3))
        out = MaxPool1D(pool_size=3, stride=2).forward(x)
        assert out.shape == (2, 4, 3)

    def test_backward_routes_to_argmax(self):
        x = np.array([[[1.0], [5.0], [3.0], [2.0]]])
        mp = MaxPool1D(pool_size=2)
        mp.forward(x)
        dx = mp.backward(np.array([[[10.0], [20.0]]]))
        assert dx[0, :, 0].tolist() == [0.0, 10.0, 20.0, 0.0]

    def test_gradient_matches_fd(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 7, 3))
        mp = MaxPool1D(pool_size=3, stride=2)
        out = mp.forward(x)
        g = rng.normal(size=out.shape)
        dx = mp.backward(g)
        eps, worst = 1e-6, 0.0
        flat = x.ravel()
        for i in range(0, flat.size, 5):
            o = flat[i]
            flat[i] = o + eps
            up = (mp.forward(x) * g).sum()
            flat[i] = o - eps
            down = (mp.forward(x) * g).sum()
            flat[i] = o
            worst = max(worst, abs((up - down) / (2 * eps) - dx.ravel()[i]))
        assert worst < 1e-8

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            MaxPool1D(pool_size=5).forward(np.zeros((1, 3, 2)))

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool1D(pool_size=0)


class TestGlobalMaxPool1D:
    def test_values(self):
        x = np.array([[[1.0, -2.0], [3.0, -1.0]]])
        out = GlobalMaxPool1D().forward(x)
        assert out[0].tolist() == [3.0, -1.0]

    def test_backward_one_hot(self):
        x = np.array([[[1.0], [3.0], [2.0]]])
        gm = GlobalMaxPool1D()
        gm.forward(x)
        dx = gm.backward(np.array([[7.0]]))
        assert dx[0, :, 0].tolist() == [0.0, 7.0, 0.0]
