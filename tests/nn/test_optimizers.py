"""Tests for optimizers and the plateau scheduler."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, ReduceLROnPlateau, RMSprop


def _param(value):
    p = Parameter(np.array(value, dtype=np.float64))
    return p


class TestSGD:
    def test_single_step(self):
        p = _param([1.0])
        p.grad[:] = [2.0]
        SGD([p], lr=0.1).step()
        assert np.isclose(p.value[0], 0.8)

    def test_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad[:] = [1.0]
        opt.step()  # v = -0.1
        p.grad[:] = [1.0]
        opt.step()  # v = -0.19
        assert np.isclose(p.value[0], -0.29)

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad[:] = [5.0]
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad[0] == 0.0


class TestRMSprop:
    def test_keras_update_rule(self):
        p = _param([1.0])
        p.grad[:] = [2.0]
        opt = RMSprop([p], lr=0.01, rho=0.9, eps=1e-7)
        opt.step()
        accum = 0.1 * 4.0
        expected = 1.0 - 0.01 * 2.0 / (np.sqrt(accum) + 1e-7)
        assert np.isclose(p.value[0], expected)

    def test_adapts_to_gradient_scale(self):
        # Two parameters with very different gradient magnitudes should
        # move by comparable amounts.
        p1, p2 = _param([0.0]), _param([0.0])
        opt = RMSprop([p1, p2], lr=0.01)
        for _ in range(10):
            p1.grad[:] = [100.0]
            p2.grad[:] = [0.01]
            opt.step()
        assert abs(p1.value[0]) < 10 * abs(p2.value[0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            RMSprop([_param([0.0])], lr=0.0)


class TestAdam:
    def test_first_step_magnitude(self):
        # With bias correction, the first Adam step is ~lr regardless of
        # gradient scale.
        for g in (0.001, 1.0, 1000.0):
            p = _param([0.0])
            p.grad[:] = [g]
            Adam([p], lr=0.01).step()
            assert np.isclose(abs(p.value[0]), 0.01, rtol=1e-3)

    def test_converges_on_quadratic(self):
        p = _param([5.0])
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad[:] = 2 * p.value  # d/dx x^2
            opt.step()
        assert abs(p.value[0]) < 0.05


class TestStateRoundTrip:
    """export -> import -> the restored optimizer takes an identical step."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: RMSprop(ps, lr=0.01),
            lambda ps: Adam(ps, lr=0.01),
        ],
        ids=["sgd-momentum", "rmsprop", "adam"],
    )
    def test_next_step_is_bitwise_identical(self, factory):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(6, 4))
        p1 = _param(rng.normal(size=4))
        opt1 = factory([p1])
        for g in grads[:5]:
            p1.grad[:] = g
            opt1.step()
        p2 = _param(p1.value.copy())
        opt2 = factory([p2])
        opt2.load_state_dict(opt1.state_dict())
        p1.grad[:] = grads[5]
        p2.grad[:] = grads[5]
        opt1.step()
        opt2.step()
        assert np.array_equal(p1.value, p2.value)

    def test_adam_timestep_survives_round_trip(self):
        """Bias correction depends on t; a lost t would skew the step."""
        p = _param([0.0])
        opt = Adam([p], lr=0.01)
        for _ in range(3):
            p.grad[:] = [1.0]
            opt.step()
        assert opt.state_dict()["slots"]["t"] == 3

    def test_kind_mismatch_rejected(self):
        p = _param([0.0])
        state = SGD([p], lr=0.1).state_dict()
        with pytest.raises(ValueError):
            Adam([_param([0.0])], lr=0.1).load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        p = _param([0.0, 0.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad[:] = [1.0, 1.0]
        opt.step()
        other = SGD([_param([0.0])], lr=0.1, momentum=0.9)
        with pytest.raises(ValueError):
            other.load_state_dict(opt.state_dict())

    def test_scheduler_round_trip_reduces_in_lockstep(self):
        opt1 = RMSprop([_param([0.0])], lr=0.01)
        sched1 = ReduceLROnPlateau(opt1, factor=0.5, patience=2)
        sched1.step(1.0)  # best = 1.0
        sched1.step(1.0)  # bad = 1
        opt2 = RMSprop([_param([0.0])], lr=opt1.lr)
        sched2 = ReduceLROnPlateau(opt2, factor=0.5, patience=2)
        sched2.load_state_dict(sched1.state_dict())
        # One more bad epoch exhausts patience for both simultaneously.
        assert sched1.step(1.0) and sched2.step(1.0)
        assert opt1.lr == opt2.lr == 0.005

    def test_scheduler_initial_state_round_trips(self):
        """The pre-first-step sentinel (no best yet) must survive export."""
        opt = RMSprop([_param([0.0])], lr=0.01)
        sched = ReduceLROnPlateau(opt, patience=2)
        restored = ReduceLROnPlateau(
            RMSprop([_param([0.0])], lr=0.01), patience=2
        )
        restored.load_state_dict(sched.state_dict())
        assert not restored.step(5.0)  # first value becomes the new best


class TestReduceLROnPlateau:
    def test_no_reduction_while_improving(self):
        p = _param([0.0])
        opt = RMSprop([p], lr=0.01)
        sched = ReduceLROnPlateau(opt, patience=2)
        for loss in (1.0, 0.9, 0.8, 0.7):
            assert not sched.step(loss)
        assert opt.lr == 0.01

    def test_reduces_after_patience(self):
        p = _param([0.0])
        opt = RMSprop([p], lr=0.01)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=3)
        sched.step(1.0)
        reduced = [sched.step(1.0) for _ in range(3)]
        assert reduced == [False, False, True]
        assert np.isclose(opt.lr, 0.005)

    def test_respects_min_lr(self):
        p = _param([0.0])
        opt = RMSprop([p], lr=1e-6)
        sched = ReduceLROnPlateau(opt, patience=1, min_lr=1e-6)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == 1e-6

    def test_counter_resets_on_improvement(self):
        p = _param([0.0])
        opt = RMSprop([p], lr=0.01)
        sched = ReduceLROnPlateau(opt, patience=2)
        sched.step(1.0)
        sched.step(1.0)  # bad 1
        sched.step(0.5)  # improvement resets
        sched.step(0.5)  # bad 1
        assert opt.lr == 0.01
