"""Robustness / failure-injection tests for the NN framework."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    RMSprop,
    Sequential,
    SoftmaxCrossEntropy,
    Trainer,
)


class TestNumericalStability:
    def test_extreme_inputs_finite(self):
        net = Sequential([Dense(3, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])
        x = np.array([[1e6, -1e6, 1e6]])
        out = net.forward(x)
        assert np.all(np.isfinite(out))

    def test_loss_finite_on_confident_wrong(self):
        lf = SoftmaxCrossEntropy()
        logits = np.array([[1000.0, -1000.0]])
        loss = lf.forward(logits, np.array([1]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(lf.backward()))

    def test_training_survives_large_lr(self):
        """RMSprop's normalisation keeps steps bounded even at lr=1."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 2))
        y = (x[:, 0] > 0).astype(int)
        net = Sequential([Dense(2, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])
        trainer = Trainer(
            optimizer_factory=lambda p: RMSprop(p, lr=1.0),
            epochs=5,
            seed=0,
        )
        hist = trainer.fit(net, x, y)
        assert all(np.isfinite(l) for l in hist.loss)
        for p in net.parameters():
            assert np.all(np.isfinite(p.value))

    def test_degenerate_constant_features(self):
        x = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        net = Sequential([Dense(3, 4, rng=0), ReLU(), Dense(4, 2, rng=1)])
        hist = Trainer(epochs=3, seed=0).fit(net, x, y)
        # Cannot learn, but must not blow up; loss stays near log 2.
        assert all(np.isfinite(l) for l in hist.loss)
        assert hist.loss[-1] < 2.0


class TestTrainerEdgeCases:
    def test_batch_larger_than_dataset(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 2))
        y = (x[:, 0] > 0).astype(int)
        net = Sequential([Dense(2, 4, rng=0), ReLU(), Dense(4, 2, rng=1)])
        hist = Trainer(epochs=2, batch_size=256, seed=0).fit(net, x, y)
        assert len(hist.loss) == 2

    def test_single_sample_batches(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 2))
        y = (x[:, 0] > 0).astype(int)
        net = Sequential([Dense(2, 4, rng=0), ReLU(), Dense(4, 2, rng=1)])
        hist = Trainer(epochs=2, batch_size=1, seed=0).fit(net, x, y)
        assert len(hist.loss) == 2

    def test_labels_must_be_contiguous_from_zero(self):
        # The trainer consumes already-indexed targets; out-of-range
        # classes must be caught by the loss.
        net = Sequential([Dense(2, 2, rng=0)])
        x = np.zeros((2, 2))
        with pytest.raises(ValueError):
            Trainer(epochs=1).fit(net, x, np.array([0, 5]))

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            Trainer(epochs=0)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            Trainer(batch_size=0)
