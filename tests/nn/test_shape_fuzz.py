"""Hypothesis shape-fuzzing for the NN layers: any legal input shape must
produce the documented output shape and a backward of the input shape."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool1D,
    MaxPool1D,
    MeanPool1D,
    ReLU,
    SumPool1D,
    Tanh,
)


@given(
    batch=st.integers(1, 5),
    length=st.integers(1, 12),
    in_ch=st.integers(1, 4),
    out_ch=st.integers(1, 4),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_conv1d_shapes(batch, length, in_ch, out_ch, kernel, stride):
    if length < kernel:
        return
    layer = Conv1D(in_ch, out_ch, kernel_size=kernel, stride=stride, rng=0)
    x = np.zeros((batch, length, in_ch))
    out = layer.forward(x)
    l_out = (length - kernel) // stride + 1
    assert out.shape == (batch, l_out, out_ch)
    assert layer.backward(np.zeros_like(out)).shape == x.shape


@given(
    lead=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    in_f=st.integers(1, 6),
    out_f=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_dense_shapes(lead, in_f, out_f):
    layer = Dense(in_f, out_f, rng=0)
    x = np.zeros((*lead, in_f))
    out = layer.forward(x)
    assert out.shape == (*lead, out_f)
    assert layer.backward(np.zeros_like(out)).shape == x.shape


@given(
    batch=st.integers(1, 4),
    length=st.integers(1, 8),
    channels=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_pooling_shapes(batch, length, channels):
    x = np.random.default_rng(0).normal(size=(batch, length, channels))
    for layer in (SumPool1D(), MeanPool1D(), GlobalMaxPool1D()):
        out = layer.forward(x)
        assert out.shape == (batch, channels)
        assert layer.backward(np.zeros_like(out)).shape == x.shape
    flat = Flatten()
    out = flat.forward(x)
    assert out.shape == (batch, length * channels)


@given(
    batch=st.integers(1, 4),
    features=st.integers(1, 6),
    rate=st.floats(0.0, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_elementwise_layers_preserve_shape(batch, features, rate):
    x = np.random.default_rng(1).normal(size=(batch, features))
    for layer in (ReLU(), Tanh(), Dropout(rate, rng=0), BatchNorm(features)):
        out = layer.forward(x, training=True)
        assert out.shape == x.shape
        assert layer.backward(np.zeros_like(out)).shape == x.shape


@given(
    batch=st.integers(1, 3),
    length=st.integers(2, 10),
    channels=st.integers(1, 3),
    pool=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_maxpool_shapes(batch, length, channels, pool):
    if length < pool:
        return
    layer = MaxPool1D(pool_size=pool)
    x = np.random.default_rng(2).normal(size=(batch, length, channels))
    out = layer.forward(x)
    l_out = (length - pool) // pool + 1
    assert out.shape == (batch, l_out, channels)
    assert layer.backward(np.zeros_like(out)).shape == x.shape
