"""Tests for the training loop and its paper protocol."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    Sequential,
    Trainer,
    predict_labels,
    predict_logits,
    predict_proba,
)


def _xor_data(n=160, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
    return x, y


def _mlp(seed=0):
    return Sequential(
        [Dense(2, 24, rng=seed), ReLU(), Dense(24, 24, rng=seed + 1), ReLU(), Dense(24, 2, rng=seed + 2)]
    )


class TestTraining:
    def test_learns_xor(self):
        x, y = _xor_data()
        hist = Trainer(epochs=50, batch_size=32, seed=0).fit(_mlp(), x, y)
        assert hist.train_accuracy[-1] > 0.95

    def test_loss_decreases(self):
        x, y = _xor_data()
        hist = Trainer(epochs=30, seed=0).fit(_mlp(), x, y)
        assert hist.loss[-1] < hist.loss[0]

    def test_history_lengths(self):
        x, y = _xor_data(60)
        hist = Trainer(epochs=7, seed=0).fit(_mlp(), x, y)
        assert len(hist.loss) == len(hist.train_accuracy) == len(hist.lr) == 7

    def test_validation_tracked(self):
        x, y = _xor_data(100)
        hist = Trainer(epochs=5, seed=0).fit(
            _mlp(), x[:80], y[:80], validation=(x[80:], y[80:])
        )
        assert len(hist.val_accuracy) == 5
        assert all(0.0 <= a <= 1.0 for a in hist.val_accuracy)

    def test_epoch_callback_invoked(self):
        x, y = _xor_data(40)
        seen = []
        Trainer(epochs=3, seed=0).fit(
            _mlp(), x, y, epoch_callback=lambda e, h: seen.append(e)
        )
        assert seen == [0, 1, 2]

    def test_deterministic_given_seed(self):
        x, y = _xor_data(60)
        h1 = Trainer(epochs=5, seed=3).fit(_mlp(seed=1), x, y)
        h2 = Trainer(epochs=5, seed=3).fit(_mlp(seed=1), x, y)
        assert np.allclose(h1.loss, h2.loss)

    def test_lr_decays_on_plateau(self):
        x, y = _xor_data(100)
        hist = Trainer(epochs=60, seed=0).fit(_mlp(), x, y)
        assert hist.lr[-1] < hist.lr[0]

    def test_rejects_mismatched_labels(self):
        x, y = _xor_data(20)
        with pytest.raises(ValueError):
            Trainer(epochs=1).fit(_mlp(), x, y[:-1])

    def test_tuple_inputs_sliced_together(self):
        """Trainer must slice multi-array inputs consistently."""
        from repro.nn.module import Network, Parameter
        from repro.nn.dense import Dense as D

        class TwoInput(Network):
            def __init__(self):
                self.fc = D(4, 2, rng=0)

            def forward(self, x, training=False):
                a, b = x
                assert a.shape[0] == b.shape[0]
                return self.fc.forward(np.concatenate([a, b], axis=1), training)

            def backward(self, grad):
                self.fc.backward(grad)

            def parameters(self):
                return self.fc.parameters()

        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 2))
        b = rng.normal(size=(30, 2))
        y = (a[:, 0] > 0).astype(int)
        hist = Trainer(epochs=2, batch_size=8, seed=0).fit(TwoInput(), (a, b), y)
        assert len(hist.loss) == 2


class TestPrediction:
    def test_predict_shapes(self):
        x, y = _xor_data(50)
        net = _mlp()
        Trainer(epochs=2, seed=0).fit(net, x, y)
        assert predict_logits(net, x).shape == (50, 2)
        assert predict_labels(net, x).shape == (50,)
        proba = predict_proba(net, x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_batched_equals_full(self):
        x, y = _xor_data(50)
        net = _mlp()
        Trainer(epochs=2, seed=0).fit(net, x, y)
        assert np.allclose(
            predict_logits(net, x, batch_size=7), predict_logits(net, x, batch_size=50)
        )


class TestHistory:
    def test_best_epoch(self):
        from repro.nn import History

        h = History(val_accuracy=[0.5, 0.8, 0.6])
        assert h.best_epoch() == 1

    def test_best_epoch_empty_raises(self):
        from repro.nn import History

        with pytest.raises(ValueError):
            History().best_epoch()
