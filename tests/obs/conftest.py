"""Observability tests share one process-global context — reset around each."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
