"""Tests for the event log: ring buffer, JSONL sink, logging bridge."""

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.obs.events import EventLog, jsonable


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable("x") == "x"
        assert jsonable(3) == 3
        assert jsonable(None) is None

    def test_numpy_scalar_and_array(self):
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.int64(7)) == 7
        assert jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_containers(self):
        out = jsonable({"a": (np.int32(1), [np.float32(0.5)])})
        assert out == {"a": [1, [0.5]]}
        json.dumps(out)  # round-trippable

    def test_fallback_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert jsonable(Weird()) == "<weird>"


class TestEventLog:
    def test_ring_capacity(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("event", f"e{i}")
        names = [r["name"] for r in log.records()]
        assert names == ["e2", "e3", "e4"]
        assert len(log) == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_filtering(self):
        log = EventLog()
        log.emit("event", "a")
        log.emit("span", "b")
        assert [r["name"] for r in log.records(kind="span")] == ["b"]
        assert [r["kind"] for r in log.records(name="a")] == ["event"]

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog()
        log.open_jsonl(path)
        log.emit("event", "epoch", path="fit/train", attrs={"loss": np.float64(0.5)})
        log.emit("span", "fit", duration_s=1.25)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "event"
        assert first["attrs"]["loss"] == 0.5
        assert json.loads(lines[1])["duration_s"] == 1.25

    def test_clear(self):
        log = EventLog()
        log.emit("event", "a")
        log.clear()
        assert log.records() == []


class TestLoggingBridge:
    def test_stdlib_records_become_events(self):
        obs.enable()
        obs.bridge_logging("repro.test_bridge", level=logging.WARNING)
        logger = logging.getLogger("repro.test_bridge")
        logger.warning("something %s", "odd")
        logger.debug("below level")  # filtered out
        records = obs.get_event_log().records(kind="log")
        assert len(records) == 1
        assert records[0]["attrs"]["message"] == "something odd"
        assert records[0]["attrs"]["level"] == "WARNING"
        # Cleanup the handler installed on the shared logger.
        logger.handlers.clear()
