"""Tests for the @timed and @count_calls instrumentation decorators."""

from repro import obs
from repro.obs.instruments import count_calls, timed


class TestTimed:
    def test_disabled_is_passthrough(self):
        @timed
        def f(x):
            return x + 1

        assert f(1) == 2
        assert obs.get_tracer().roots == []

    def test_enabled_records_span(self):
        @timed("my_stage", kind="test")
        def f():
            return 42

        obs.enable()
        assert f() == 42
        roots = obs.get_tracer().roots
        assert [s.name for s in roots] == ["my_stage"]
        assert roots[0].attrs["kind"] == "test"

    def test_default_name_is_qualname(self):
        @timed
        def named_thing():
            pass

        obs.enable()
        named_thing()
        assert "named_thing" in obs.get_tracer().roots[0].name

    def test_nests_under_open_span(self):
        @timed("leaf")
        def f():
            pass

        obs.enable()
        with obs.span("outer"):
            f()
        outer = obs.get_tracer().roots[0]
        assert [c.name for c in outer.children] == ["leaf"]


class TestCountCalls:
    def test_counts_when_enabled(self):
        @count_calls("work")
        def f():
            pass

        obs.enable()
        f()
        f()
        assert obs.get_metrics().snapshot()["work_calls_total"]["value"] == 2

    def test_disabled_counts_nothing(self):
        @count_calls("idle")
        def f():
            return "ok"

        assert f() == "ok"
        assert "idle_calls_total" not in obs.get_metrics().snapshot()
