"""Tests for counters, gauges, histograms, and the registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_reset(self):
        c = Counter()
        c.inc(4)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_inc(self):
        g = Gauge()
        g.inc(-2)
        assert g.value == -2


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        h = Histogram(edges=(1.0, 2.0))
        h.observe(1.0)  # exactly on the first edge -> first bucket
        h.observe(1.5)
        h.observe(2.0)  # exactly on the last edge -> second bucket
        h.observe(5.0)  # above every edge -> overflow
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(9.5)

    def test_mean(self):
        h = Histogram(edges=(10.0,))
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == pytest.approx(3.0)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=())

    def test_snapshot_roundtrip_fields(self):
        h = Histogram()
        h.observe(0.05)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["edges"] == list(DEFAULT_BUCKETS)
        assert sum(snap["counts"]) == 1


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        metric = reg.counter("a")
        assert metric is NULL_METRIC
        metric.inc()
        metric.set(3)
        metric.observe(1)
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc()
        reg.counter("aa").inc()
        assert list(reg.snapshot()) == ["aa", "zz"]

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.histogram("h").observe(2)
        reg.reset()
        assert reg.snapshot()["a"]["value"] == 0.0
        assert reg.snapshot()["h"]["count"] == 0
        assert len(reg) == 2

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.clear()
        assert len(reg) == 0

    def test_promtext_format(self):
        reg = MetricsRegistry()
        reg.counter("graphs_total").inc(3)
        reg.histogram("lat", edges=(1.0, 2.0)).observe(0.5)
        text = reg.to_promtext()
        assert "# TYPE graphs_total counter" in text
        assert "graphs_total 3" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text


_NAMES = st.sampled_from(["a", "b", "c", "d"])
_OBSERVATIONS = st.lists(
    st.tuples(_NAMES, st.integers(min_value=0, max_value=1000)), max_size=50
)


class TestOrderInsensitivity:
    @given(obs_list=_OBSERVATIONS, seed=st.integers(min_value=0, max_value=2**16))
    def test_counter_snapshot_order_insensitive(self, obs_list, seed):
        """snapshot() is identical whatever order counter increments arrive in."""
        import random

        shuffled = list(obs_list)
        random.Random(seed).shuffle(shuffled)

        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        for name, amount in obs_list:
            reg_a.counter(name).inc(amount)
        for name, amount in shuffled:
            reg_b.counter(name).inc(amount)
        assert reg_a.snapshot() == reg_b.snapshot()

    @given(values=st.lists(st.integers(min_value=0, max_value=10**6), max_size=50),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_histogram_counts_order_insensitive(self, values, seed):
        import random

        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        h1, h2 = Histogram(edges=(10.0, 100.0, 10_000.0)), Histogram(
            edges=(10.0, 100.0, 10_000.0)
        )
        for v in values:
            h1.observe(v)
        for v in shuffled:
            h2.observe(v)
        assert h1.counts == h2.counts
        assert h1.count == h2.count


class TestPromtextExposition:
    """# HELP / # TYPE lines, escaping, and the parser round-trip."""

    def test_help_line_emitted_when_described(self):
        reg = MetricsRegistry()
        reg.counter("graphs_total").inc(1)
        reg.describe("graphs_total", "Graphs processed.")
        text = reg.to_promtext()
        lines = text.splitlines()
        help_index = lines.index("# HELP graphs_total Graphs processed.")
        assert lines[help_index + 1] == "# TYPE graphs_total counter"

    def test_undescribed_metric_has_no_help_line(self):
        reg = MetricsRegistry()
        reg.counter("bare_total").inc(1)
        assert "# HELP" not in reg.to_promtext()

    def test_describe_before_registration_and_while_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.describe("later_total", "Registered after describing.")
        reg.enabled = True
        reg.counter("later_total").inc(2)
        assert "# HELP later_total" in reg.to_promtext()
        reg.reset()  # descriptions survive a metric reset
        assert "# HELP later_total" in reg.to_promtext()

    def test_help_text_escaping(self):
        from repro.obs.metrics import escape_help

        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.describe("g", "line one\nline two \\ slash")
        text = reg.to_promtext()
        assert "# HELP g line one\\nline two \\\\ slash" in text
        assert all("\n" not in line or True for line in text.splitlines())

    def test_label_value_escaping(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_parser_round_trip(self):
        """to_promtext -> parse_promtext_samples recovers every sample."""
        from repro.serve.loadgen import parse_promtext, parse_promtext_samples

        reg = MetricsRegistry()
        reg.counter("requests_total").inc(7)
        reg.describe("requests_total", 'Requests with "quotes"\nand newline.')
        reg.gauge("depth").set(3.5)
        hist = reg.histogram("lat_seconds", edges=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)

        text = reg.to_promtext()
        samples = parse_promtext_samples(text)
        flat = {(name, tuple(sorted(labels.items()))): value
                for name, labels, value in samples}
        assert flat[("requests_total", ())] == 7.0
        assert flat[("depth", ())] == 3.5
        assert flat[("lat_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert flat[("lat_seconds_bucket", (("le", "1"),))] == 2.0
        assert flat[("lat_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert flat[("lat_seconds_count", ())] == 3.0
        # The scalar view stays backward-compatible (labels skipped).
        scalars = parse_promtext(text)
        assert scalars["requests_total"] == 7.0
        assert "lat_seconds_bucket" not in scalars

    def test_parser_unescapes_label_values(self):
        from repro.obs.metrics import escape_label_value
        from repro.serve.loadgen import parse_promtext_samples

        raw = 'quo"te\\slash\nnewline'
        line = f'm_bucket{{le="{escape_label_value(raw)}"}} 4'
        samples = parse_promtext_samples(line)
        assert samples == [("m_bucket", {"le": raw}, 4.0)]
