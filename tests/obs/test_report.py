"""JSONL round-trip: a live run's summary must be reconstructible offline."""

import pytest

from repro import obs
from repro.obs.report import build_report, format_report, load_events
from repro.obs.trace import format_span_tree


def _tiny_run(path):
    """Record a small synthetic run to ``path`` and return the live tree."""
    obs.enable(jsonl_path=path)
    obs.meta("run", dataset="TOY", model="deepmap-wl")
    with obs.span("cv", folds=1):
        with obs.span("fold", fold=0):
            with obs.span("fit"):
                with obs.span("feature_map"):
                    pass
                with obs.span("encode"):
                    pass
                with obs.span("train"):
                    obs.event("epoch", epoch=0, fold=0, loss=0.9, val_accuracy=0.4,
                              grad_norm=2.0, lr=0.01)
                    obs.event("epoch", epoch=1, fold=0, loss=0.5, val_accuracy=0.7,
                              grad_norm=1.0, lr=0.005)
    obs.counter("graphs_encoded_total").inc(8)
    obs.flush_metrics()
    live_tree = obs.render_profile()
    obs.disable()
    return live_tree


class TestRoundTrip:
    def test_report_reconstructs_live_profile(self, tmp_path):
        path = tmp_path / "run.jsonl"
        live_tree = _tiny_run(path)
        report = build_report(load_events(path))
        assert format_span_tree(report.span_rows) == live_tree

    def test_report_contents(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _tiny_run(path)
        text = format_report(build_report(load_events(path)))
        assert "dataset=TOY" in text
        assert "stage timings" in text
        for stage in ("cv", "fold", "fit", "feature_map", "encode", "train"):
            assert stage in text
        assert "epochs 2" in text
        assert "best val acc 0.7000 @ epoch 1" in text
        assert "max grad norm 2.000" in text
        assert "lr 0.0100 -> 0.0050" in text
        assert "graphs_encoded_total: 8.0000" in text

    def test_epoch_groups_keyed_by_fold(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.enable(jsonl_path=path)
        with obs.span("cv"):
            for fold in range(2):
                with obs.span("fold", fold=fold), obs.span("train"):
                    obs.event("epoch", epoch=0, fold=fold, loss=0.5)
        obs.disable()
        report = build_report(load_events(path))
        assert sorted(report.epochs) == [
            "cv/fold/train [fold 0]",
            "cv/fold/train [fold 1]",
        ]


class TestLoadEvents:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "event", "name": "a"}\n\n')
        assert len(load_events(path)) == 1

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_events(path)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_events(path)


class TestEmptyReport:
    def test_no_spans(self):
        text = format_report(build_report([]))
        assert "no spans recorded" in text
        assert "(0 records)" in text
