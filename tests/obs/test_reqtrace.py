"""Tests for request-trace ids, the trace store, and waterfall rebuilds."""

import threading

import pytest

from repro.obs.reqtrace import (
    TraceStore,
    build_waterfall,
    format_waterfall,
    list_traces,
    new_trace_id,
    valid_trace_id,
)


class TestTraceIds:
    def test_new_ids_are_valid_and_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(valid_trace_id(t) for t in ids)

    def test_valid_accepts_hex_and_dashes(self):
        assert valid_trace_id("deadbeefdeadbeef")
        assert valid_trace_id("DEADBEEF01")
        assert valid_trace_id("a1b2c3d4-e5f6-7890")

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "short",  # under 8 chars
            "g" * 16,  # non-hex
            "x" * 16,
            "deadbeef deadbeef",  # whitespace
            'dead"beef00',  # quote injection
            "-abcdef0123",  # must start with hex
            "a" * 65,  # too long
        ],
    )
    def test_invalid_rejected(self, bad):
        assert not valid_trace_id(bad)


class TestTraceStore:
    def test_put_get_roundtrip(self):
        store = TraceStore(capacity=4)
        store.put("aa", {"trace_id": "aa"})
        assert store.get("aa") == {"trace_id": "aa"}
        assert store.get("bb") is None

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=3)
        for i in range(5):
            store.put(f"t{i}", {"n": i})
        assert store.ids() == ["t2", "t3", "t4"]
        assert store.get("t0") is None
        assert store.get("t4") == {"n": 4}

    def test_reput_refreshes_position(self):
        store = TraceStore(capacity=2)
        store.put("a", {})
        store.put("b", {})
        store.put("a", {"fresh": True})
        store.put("c", {})
        assert store.get("b") is None
        assert store.get("a") == {"fresh": True}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_concurrent_puts_stay_bounded(self):
        store = TraceStore(capacity=16)

        def writer(worker):
            for i in range(200):
                store.put(f"w{worker}-{i}", {"w": worker, "i": i})

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store) == 16
        for trace_id in store.ids():
            assert store.get(trace_id) is not None


def _span(name, trace_id, duration, offset=None, **attrs):
    record = {
        "kind": "span",
        "name": name,
        "duration_s": duration,
        "attrs": {"trace_id": trace_id, **attrs},
    }
    if offset is not None:
        record["attrs"]["offset_s"] = offset
    return record


class TestBuildWaterfall:
    def _records(self):
        return [
            {"kind": "event", "name": "http_access", "attrs": {"status": 200}},
            _span("queue_wait", "t1", 0.001, offset=0.0005),
            _span("batch_wait", "t1", 0.002, offset=0.0015),
            _span("infer", "t1", 0.004, offset=0.0035),
            _span("serialize", "t1", 0.0005, offset=0.0075),
            _span(
                "request", "t1", 0.009,
                endpoint="predict", model="default", status=200, batch_id="b7",
            ),
            _span("request", "t2", 0.003, endpoint="predict", status=429),
        ]

    def test_reconstructs_envelope_and_stages(self):
        record = build_waterfall(self._records(), "t1")
        assert record["endpoint"] == "predict"
        assert record["model"] == "default"
        assert record["status"] == 200
        assert record["batch_id"] == "b7"
        assert [s["name"] for s in record["spans"]] == [
            "queue_wait", "batch_wait", "infer", "serialize",
        ]
        assert sum(s["duration_s"] for s in record["spans"]) <= record["duration_s"]

    def test_stages_sorted_by_offset(self):
        records = self._records()
        records[1:5] = reversed(records[1:5])  # shuffle stage order in the log
        record = build_waterfall(records, "t1")
        offsets = [s["offset_s"] for s in record["spans"]]
        assert offsets == sorted(offsets)

    def test_unknown_trace_returns_none(self):
        assert build_waterfall(self._records(), "zzzz") is None

    def test_trace_without_stages_still_has_envelope(self):
        record = build_waterfall(self._records(), "t2")
        assert record["status"] == 429
        assert record["spans"] == []

    def test_list_traces_rows(self):
        rows = list_traces(self._records())
        assert [r["trace_id"] for r in rows] == ["t1", "t2"]
        assert rows[0]["batch_id"] == "b7"
        assert rows[1]["status"] == 429


class TestFormatWaterfall:
    def test_renders_all_stages_and_total(self):
        record = build_waterfall(TestBuildWaterfall()._records(), "t1")
        text = format_waterfall(record)
        for stage in ("queue_wait", "batch_wait", "infer", "serialize"):
            assert stage in text
        assert "total 9.00ms" in text
        assert "(accounted)" in text

    def test_empty_spans_noted(self):
        text = format_waterfall({"trace_id": "t", "duration_s": 0.001, "spans": []})
        assert "no stage spans" in text
