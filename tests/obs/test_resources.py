"""Tests for process resource sampling, publication, and worker merging."""

import time

import pytest

from repro import obs
from repro.obs.resources import (
    RESOURCE_GAUGES,
    ResourceSampler,
    merge_worker_sample,
    publish_resources,
    sample_resources,
)


class TestSampleResources:
    def test_sample_shape_and_sanity(self):
        sample = sample_resources()
        assert set(sample) == {
            "rss_bytes",
            "peak_rss_bytes",
            "cpu_seconds",
            "gc_collections_total",
            "gc_tracked_objects",
            "threads",
        }
        assert sample["rss_bytes"] > 0  # /proc is available on Linux CI
        assert sample["peak_rss_bytes"] > 0
        assert sample["cpu_seconds"] > 0
        assert sample["threads"] >= 1

    def test_sample_is_json_safe(self):
        import json

        json.dumps(sample_resources())

    def test_rss_tracks_allocation(self):
        # Assert on live RSS, not peak: earlier tests in a full-suite run
        # may already have pushed the process high-water mark far above
        # the current footprint, in which case 64 MiB can't move it.
        before = sample_resources()["rss_bytes"]
        blob = bytearray(64 * 1024 * 1024)  # 64 MiB (mmap-backed)
        blob[::4096] = b"x" * len(blob[::4096])  # touch every page
        after = sample_resources()
        del blob
        assert after["rss_bytes"] >= before + 32 * 1024 * 1024


class TestPublishResources:
    def test_publishes_all_gauges_with_help(self):
        obs.enable()
        sample = publish_resources()
        registry = obs.get_metrics()
        for name in RESOURCE_GAUGES:
            assert registry.help_text(name)
        assert registry.gauge("resource_rss_bytes").value == sample["rss_bytes"]
        assert "# HELP resource_rss_bytes" in registry.to_promtext()

    def test_peak_rss_is_monotone(self):
        obs.enable()
        publish_resources({**sample_resources(), "peak_rss_bytes": 999_999_999_999})
        publish_resources()  # real (smaller) sample must not lower it
        value = obs.get_metrics().gauge("resource_peak_rss_bytes").value
        assert value == 999_999_999_999

    def test_noop_while_disabled(self):
        sample = publish_resources()  # must not raise against null gauges
        assert sample["rss_bytes"] >= 0
        obs.enable()
        assert obs.get_metrics().gauge("resource_rss_bytes").value == 0.0


class TestMergeWorkerSample:
    def test_peak_takes_max_cpu_accumulates(self):
        obs.enable()
        merge_worker_sample({"peak_rss_bytes": 100, "cpu_seconds": 1.5})
        merge_worker_sample({"peak_rss_bytes": 50, "cpu_seconds": 2.0})
        registry = obs.get_metrics()
        assert registry.gauge("worker_peak_rss_bytes").value == 100
        assert registry.counter("worker_cpu_seconds_total").value == pytest.approx(3.5)

    def test_none_or_empty_is_noop(self):
        obs.enable()
        merge_worker_sample(None)
        merge_worker_sample({})
        assert obs.get_metrics().gauge("worker_peak_rss_bytes").value == 0.0

    def test_capture_worker_payload_merges_resources(self):
        obs.enable()
        payload = obs.capture_worker()
        assert payload["resources"]["rss_bytes"] > 0
        # A worker's resource_* gauges must not clobber the parent's.
        payload["metrics"]["resource_rss_bytes"] = {"type": "gauge", "value": 1.0}
        publish_resources()
        parent_rss = obs.get_metrics().gauge("resource_rss_bytes").value
        obs.merge_worker(payload)
        registry = obs.get_metrics()
        assert registry.gauge("resource_rss_bytes").value == parent_rss
        assert registry.gauge("worker_peak_rss_bytes").value > 0


class TestResourceSampler:
    def test_samples_on_interval(self):
        obs.enable()
        sampler = ResourceSampler(interval_s=0.02)
        with sampler:
            assert sampler.running
            deadline = time.monotonic() + 2.0
            while sampler.samples_taken < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert sampler.samples_taken >= 3
        assert not sampler.running
        assert obs.get_metrics().gauge("resource_rss_bytes").value > 0

    def test_nonpositive_interval_disables(self):
        sampler = ResourceSampler(interval_s=0)
        sampler.start()
        assert not sampler.running
        assert sampler.samples_taken == 0
        sampler.stop()

    def test_extra_gauges_published(self):
        obs.enable()
        sampler = ResourceSampler(interval_s=60.0, extra=lambda: {"my_depth": 7})
        sampler.sample_once()
        assert obs.get_metrics().gauge("my_depth").value == 7.0

    def test_extra_failure_counted_not_raised(self):
        obs.enable()

        def broken():
            raise RuntimeError("boom")

        sampler = ResourceSampler(interval_s=60.0, extra=broken)
        sampler.sample_once()  # must not raise
        errors = obs.get_metrics().counter("resource_sampler_errors_total").value
        assert errors == 1

    def test_start_is_idempotent(self):
        sampler = ResourceSampler(interval_s=30.0)
        sampler.start()
        thread_a = sampler._thread
        sampler.start()
        assert sampler._thread is thread_a
        sampler.stop()
