"""Tests for sliding-window SLO monitoring and the offline replay."""

import pytest

from repro import obs
from repro.obs.slo import (
    SloConfig,
    SloMonitor,
    build_slo_summary,
    format_slo_summary,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float) -> None:
        self.now += dt


def make_monitor(**overrides) -> tuple[SloMonitor, FakeClock]:
    config = SloConfig(
        latency_p95_ms=overrides.pop("latency_p95_ms", 100.0),
        error_rate_target=overrides.pop("error_rate_target", 0.1),
        window_s=overrides.pop("window_s", 10.0),
        min_samples=overrides.pop("min_samples", 5),
        cooldown_s=overrides.pop("cooldown_s", 5.0),
        **overrides,
    )
    clock = FakeClock()
    return SloMonitor(config, clock=clock), clock


class TestSloConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_p95_ms": 0},
            {"error_rate_target": 0.0},
            {"error_rate_target": 1.0},
            {"window_s": -1},
            {"min_samples": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SloConfig(**kwargs)


class TestSloMonitor:
    def test_starts_ok(self):
        monitor, _ = make_monitor()
        assert monitor.status() == "ok"
        assert not monitor.degraded

    def test_healthy_traffic_stays_ok(self):
        monitor, clock = make_monitor()
        for _ in range(50):
            clock.tick(0.01)
            monitor.observe(0.005, 200)
        assert monitor.status() == "ok"
        snap = monitor.snapshot()
        assert snap["breaches"] == []
        assert snap["window"]["error_rate"] == 0.0

    def test_error_rate_breach_degrades(self):
        monitor, clock = make_monitor()
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.005, 429)
        assert monitor.status() == "degraded"
        snap = monitor.snapshot()
        assert any("errors" in b for b in snap["breaches"])
        assert snap["window"]["burn_rate"] > 1.0

    def test_latency_breach_degrades(self):
        monitor, clock = make_monitor()
        for _ in range(20):
            clock.tick(0.01)
            monitor.observe(0.5, 200)  # 500ms >> 100ms target
        assert monitor.status() == "degraded"
        assert any("latency" in b for b in monitor.snapshot()["breaches"])

    def test_below_min_samples_never_breaches(self):
        monitor, clock = make_monitor(min_samples=5)
        for _ in range(4):
            clock.tick(0.01)
            monitor.observe(10.0, 500)
        assert monitor.status() == "ok"

    def test_recovery_after_window_slides(self):
        monitor, clock = make_monitor(window_s=10.0)
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.005, 503)
        assert monitor.degraded
        clock.tick(11.0)  # the bad samples age out of the window
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.005, 200)
        assert monitor.status() == "ok"

    def test_4xx_client_errors_do_not_spend_budget(self):
        monitor, clock = make_monitor()
        for _ in range(20):
            clock.tick(0.01)
            monitor.observe(0.005, 400)  # malformed requests: server was right
        assert monitor.status() == "ok"

    @pytest.mark.parametrize("status", [429, 500, 503, 504])
    def test_error_statuses_spend_budget(self, status):
        monitor, clock = make_monitor()
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.005, status)
        assert monitor.degraded

    def test_breach_event_and_cooldown(self):
        obs.enable()
        monitor, clock = make_monitor(cooldown_s=100.0)
        for _ in range(20):
            clock.tick(0.01)
            monitor.observe(0.005, 500)
        breaches = obs.get_event_log().records(name="slo_breach")
        # One alert at the flip; the cooldown suppresses the other 14+.
        assert len(breaches) == 1
        assert breaches[0]["attrs"]["breaches"]
        assert obs.get_metrics().counter("slo_alerts_total").value == 1

    def test_recovery_event_emitted(self):
        obs.enable()
        monitor, clock = make_monitor(window_s=5.0)
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.005, 500)
        assert monitor.degraded
        clock.tick(6.0)
        monitor.observe(0.005, 200)
        assert not monitor.degraded
        assert obs.get_event_log().records(name="slo_recovered")

    def test_gauges_published(self):
        obs.enable()
        monitor, clock = make_monitor()
        for _ in range(10):
            clock.tick(0.01)
            monitor.observe(0.02, 200)
        registry = obs.get_metrics()
        assert registry.gauge("slo_latency_p95_ms").value == pytest.approx(20.0)
        assert registry.gauge("slo_error_rate").value == 0.0
        assert registry.gauge("slo_degraded").value == 0.0

    def test_window_memory_bounded(self):
        monitor, clock = make_monitor(max_samples=64)
        for _ in range(1000):
            clock.tick(0.001)
            monitor.observe(0.005, 200)
        assert monitor.snapshot()["window"]["window_count"] <= 64
        assert monitor.total == 1000

    def test_snapshot_is_json_shaped(self):
        import json

        monitor, clock = make_monitor()
        clock.tick(0.01)
        monitor.observe(0.005, 200)
        json.dumps(monitor.snapshot())  # must not raise


def _access(status, duration_ms):
    return {
        "kind": "event",
        "name": "http_access",
        "attrs": {"status": status, "duration_ms": duration_ms},
    }


class TestOfflineSummary:
    def test_replays_access_log(self):
        records = [_access(200, 5.0)] * 30 + [_access(429, 1.0)] * 10
        summary = build_slo_summary(records, SloConfig(error_rate_target=0.05))
        assert summary["status"] == "degraded"
        assert summary["window"]["window_count"] == 40
        assert summary["window"]["error_rate"] == pytest.approx(0.25)
        assert summary["statuses"] == {"200": 30, "429": 10}

    def test_clean_run_is_ok(self):
        records = [_access(200, 5.0)] * 30
        summary = build_slo_summary(records)
        assert summary["status"] == "ok"
        assert summary["breaches"] == []

    def test_ignores_non_access_records(self):
        records = [
            {"kind": "span", "name": "request", "attrs": {"status": 500}},
            {"kind": "event", "name": "epoch", "attrs": {"status": 500}},
        ]
        summary = build_slo_summary(records)
        assert summary["window"]["window_count"] == 0

    def test_format_mentions_breaches(self):
        records = [_access(500, 5.0)] * 30
        text = format_slo_summary(build_slo_summary(records))
        assert "DEGRADED" in text
        assert "status counts" in text

    def test_format_ok(self):
        text = format_slo_summary(build_slo_summary([_access(200, 2.0)] * 30))
        assert "SLO status: ok" in text
