"""Trainer telemetry: one epoch event per epoch, gradient norms recorded."""

import numpy as np

from repro import obs
from repro.nn import Dense, ReLU, Sequential, Trainer
from repro.obs.telemetry import TelemetryCallback


def _data(n=48, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] > 0).astype(int)
    return x, y


def _mlp(seed=0):
    return Sequential([Dense(2, 8, rng=seed), ReLU(), Dense(8, 2, rng=seed + 1)])


class TestTrainerTelemetry:
    def test_one_epoch_event_per_epoch(self):
        obs.enable()
        x, y = _data()
        Trainer(epochs=4, seed=0).fit(_mlp(), x, y, validation=(x, y))
        events = obs.get_event_log().records(kind="event", name="epoch")
        assert len(events) == 4
        assert [e["attrs"]["epoch"] for e in events] == [0, 1, 2, 3]
        first = events[0]["attrs"]
        assert {"loss", "train_accuracy", "val_accuracy", "lr", "grad_norm"} <= set(first)

    def test_disabled_emits_nothing(self):
        x, y = _data()
        Trainer(epochs=2, seed=0).fit(_mlp(), x, y)
        assert obs.get_event_log().records() == []

    def test_grad_norm_always_in_history(self):
        x, y = _data()
        hist = Trainer(epochs=3, seed=0).fit(_mlp(), x, y)
        assert len(hist.grad_norm) == 3
        assert all(g >= 0.0 for g in hist.grad_norm)

    def test_grad_norm_preclip_with_clipping(self):
        x, y = _data()
        tight = 1e-6
        hist = Trainer(epochs=2, seed=0, max_grad_norm=tight).fit(_mlp(), x, y)
        # The recorded norm is the PRE-clip norm: far above the clip bound.
        assert all(g > tight for g in hist.grad_norm)

    def test_metrics_mirrored(self):
        obs.enable()
        x, y = _data()
        Trainer(epochs=2, seed=0).fit(_mlp(), x, y)
        snap = obs.get_metrics().snapshot()
        assert snap["epochs_total"]["value"] == 2
        assert snap["grad_norm"]["count"] == 2
        assert "train_loss" in snap


class TestTelemetryCallback:
    def test_counts_emissions(self):
        obs.enable()

        class H:
            loss = [0.5]
            lr = [0.01]

        cb = TelemetryCallback()
        cb(0, H())
        cb(1, H())
        assert cb.emitted == 2

    def test_extra_overrides_history(self):
        obs.enable()

        class H:
            lr = [0.01]

        TelemetryCallback()(0, H(), lr=0.005)
        event = obs.get_event_log().records(kind="event", name="epoch")[0]
        assert event["attrs"]["lr"] == 0.005

    def test_noop_when_disabled(self):
        cb = TelemetryCallback()
        cb(0, object())
        assert cb.emitted == 0

    def test_tags_enclosing_fold(self):
        obs.enable()

        class H:
            loss = [0.1]

        with obs.span("fold", fold=7):
            TelemetryCallback()(0, H())
        event = obs.get_event_log().records(kind="event", name="epoch")[0]
        assert event["attrs"]["fold"] == 7
