"""Tests for span nesting, exception safety, and the profile renderer."""

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer, format_span_tree, span_rows


class TestTracerNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[0].path == "outer/inner_a"

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        assert outer.duration >= outer.children[0].duration >= 0.0

    def test_current_path(self):
        tracer = Tracer()
        assert tracer.current_path() == ""
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.current_path() == "a/b"
        assert tracer.current_path() == ""

    def test_current_attr_walks_up(self):
        tracer = Tracer()
        with tracer.span("cv", fold=3):
            with tracer.span("train"):
                assert tracer.current_attr("fold") == 3
                assert tracer.current_attr("missing") is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        # Both spans closed, stack unwound, error tagged.
        assert tracer.current() is None
        outer = tracer.roots[0]
        assert outer.error == "RuntimeError"
        assert outer.children[0].error == "RuntimeError"
        assert outer.children[0].end is not None

    def test_on_close_hook_fires_per_span(self):
        closed = []
        tracer = Tracer(on_close=lambda s: closed.append(s.path))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert closed == ["a/b", "a"]

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestGlobalSpan:
    def test_disabled_returns_shared_null_span(self):
        assert not obs.enabled()
        sp = obs.span("x")
        assert sp is NULL_SPAN
        with sp:
            sp.set_attr("k", 1)  # no-op, no error
        assert obs.get_tracer().roots == []

    def test_null_span_is_reentrant(self):
        with obs.span("a"):
            with obs.span("a"):
                pass  # same singleton open twice: fine

    def test_enabled_records_and_emits_event(self):
        obs.enable()
        with obs.span("stage", graphs=2):
            pass
        records = obs.get_event_log().records(kind="span")
        assert len(records) == 1
        assert records[0]["name"] == "stage"
        assert records[0]["attrs"]["graphs"] == 2
        assert records[0]["duration_s"] >= 0.0

    def test_exception_tagged_in_event(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("bad"):
                raise ValueError()
        record = obs.get_event_log().records(kind="span")[0]
        assert record["attrs"]["error"] == "ValueError"


class TestRender:
    def test_format_aggregates_paths(self):
        rows = [
            ("cv", 4.0),
            ("cv/fold", 2.0),
            ("cv/fold", 2.0),
            ("cv/fold/train", 1.5),
            ("cv/fold/train", 1.5),
        ]
        text = format_span_tree(rows)
        lines = text.splitlines()
        assert "stage" in lines[0]
        fold_line = next(l for l in lines if "fold" in l and "train" not in l)
        assert " 2 " in fold_line  # aggregated call count
        assert "4.000s" in text
        assert "100.0%" in text  # fold share of cv

    def test_format_deterministic_under_row_order(self):
        rows = [("a", 1.0), ("a/b", 0.5), ("a/c", 0.25)]
        assert format_span_tree(rows) == format_span_tree(list(reversed(rows)))

    def test_empty(self):
        assert "no spans" in format_span_tree([])

    def test_span_rows_parents_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        rows = span_rows(tracer.roots)
        assert [p for p, _ in rows] == ["outer", "outer/inner"]
