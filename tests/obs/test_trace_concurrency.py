"""Concurrency tests for the Tracer: per-thread stacks, shared roots, graft.

The serving stack opens ``request`` spans on many handler threads at
once while the batcher thread opens ``serve_batch`` spans and the
handler grafts stage subtrees — these tests pin down that spans stay
well-formed under that interleaving.
"""

import threading

from repro.obs.trace import Span, Tracer, span_rows


def collect_paths(tracer: Tracer) -> list[str]:
    return [path for path, _ in tracer.rows()]


class TestThreadedSpans:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(8)
        errors: list[str] = []

        def worker(i: int) -> None:
            barrier.wait()
            for j in range(50):
                with tracer.span("outer", worker=i, j=j):
                    if tracer.current().name != "outer":
                        errors.append(f"w{i}: wrong current outer")
                    with tracer.span("inner"):
                        if tracer.current_path() != "outer/inner":
                            errors.append(
                                f"w{i}: path {tracer.current_path()!r}"
                            )
            if tracer.current() is not None:
                errors.append(f"w{i}: stack not empty at exit")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Every outer span is a root (8 workers x 50 iterations), and
        # every root holds exactly its own inner child.
        assert len(tracer.roots) == 8 * 50
        for root in tracer.roots:
            assert root.name == "outer"
            assert [c.name for c in root.children] == ["inner"]
            assert root.duration >= root.children[0].duration

    def test_on_close_sees_every_span_exactly_once(self):
        closed: list[str] = []
        lock = threading.Lock()

        def on_close(span: Span) -> None:
            with lock:
                closed.append(span.path)

        tracer = Tracer(on_close=on_close)

        def worker(i: int) -> None:
            for _ in range(25):
                with tracer.span(f"w{i}"):
                    with tracer.span("leaf"):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(closed) == 4 * 25 * 2
        for i in range(4):
            assert closed.count(f"w{i}") == 25
            assert closed.count(f"w{i}/leaf") == 25

    def test_rows_well_formed_after_concurrent_recording(self):
        tracer = Tracer()

        def worker(i: int) -> None:
            for _ in range(20):
                with tracer.span("stage", worker=i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rows = span_rows(tracer.roots)
        assert len(rows) == 6 * 20
        assert all(path == "stage" and duration >= 0 for path, duration in rows)


class TestGraftRoundTrip:
    def _build_tree(self) -> Span:
        source = Tracer()
        with source.span("fold", index=3) as fold:
            with source.span("fit"):
                with source.span("train", epochs=5):
                    pass
            with source.span("score"):
                pass
        return fold

    def test_to_dict_graft_preserves_structure(self):
        fold = self._build_tree()
        tree = fold.to_dict()
        target = Tracer()
        with target.span("cv"):
            target.graft(tree)
        paths = collect_paths(target)
        assert paths == [
            "cv",
            "cv/fold",
            "cv/fold/fit",
            "cv/fold/fit/train",
            "cv/fold/score",
        ]
        grafted = target.roots[0].children[0]
        assert grafted.attrs == {"index": 3}
        assert grafted.duration == fold.duration
        assert grafted.children[0].children[0].attrs == {"epochs": 5}

    def test_double_roundtrip_is_stable(self):
        tree = self._build_tree().to_dict()
        target = Tracer()
        regrafted = target.graft(tree).to_dict()
        assert regrafted == tree

    def test_graft_with_explicit_parent_from_other_thread(self):
        """A span opened on one thread can adopt trees grafted from another.

        This is the serve pattern: the handler thread holds the open
        ``request`` span and grafts stage dicts under it explicitly.
        """
        tracer = Tracer()
        stage = {"name": "infer", "attrs": {"offset_s": 0.001}, "duration": 0.004}
        done = threading.Event()

        with tracer.span("request") as request:

            def other_thread() -> None:
                tracer.graft(stage, parent=request)
                done.set()

            threading.Thread(target=other_thread).start()
            assert done.wait(timeout=5.0)
        assert [c.name for c in request.children] == ["infer"]
        assert collect_paths(tracer) == ["request", "request/infer"]

    def test_concurrent_grafts_all_land(self):
        tracer = Tracer()
        trees = [
            {"name": f"t{i}", "attrs": {}, "duration": 0.001, "children": []}
            for i in range(64)
        ]

        def graft_some(chunk) -> None:
            for tree in chunk:
                tracer.graft(tree)  # no open span on this thread -> root

        threads = [
            threading.Thread(target=graft_some, args=(trees[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tracer.roots) == sorted(
            f"t{i}" for i in range(64)
        )

    def test_graft_closes_children_before_parent(self):
        order: list[str] = []
        tracer = Tracer(on_close=lambda s: order.append(s.name))
        tracer.graft(
            {
                "name": "parent",
                "attrs": {},
                "duration": 0.01,
                "children": [
                    {"name": "a", "attrs": {}, "duration": 0.004, "children": []},
                    {"name": "b", "attrs": {}, "duration": 0.005, "children": []},
                ],
            }
        )
        assert order == ["a", "b", "parent"]
