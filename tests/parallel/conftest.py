"""Fixtures for the parallel-execution and cache test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.datasets import GraphDataset
from repro.graph import ensure_connected, erdos_renyi
from repro.parallel import WORKERS_ENV


@pytest.fixture(autouse=True)
def _isolated_runtime(monkeypatch):
    """Each test starts with no default cache and no env overrides."""
    monkeypatch.delenv(cache_mod.CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    cache_mod.reset_default_cache()
    yield
    cache_mod.reset_default_cache()


@pytest.fixture(scope="module")
def cv_dataset() -> GraphDataset:
    """16 connected labeled graphs in two structural classes."""
    rng = np.random.default_rng(7)
    graphs, labels = [], []
    for i in range(16):
        p = 0.25 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(8, p, rng), rng)
        g = g.with_labels((np.arange(8) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    return GraphDataset(name="cvtoy", graphs=graphs, y=np.array(labels))
