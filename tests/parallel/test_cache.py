"""FeatureMapCache behavior: tiers, eviction, corruption, defaults."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.cache import (
    CACHE_DIR_ENV,
    FeatureMapCache,
    cache_key,
    configure,
    get_cache,
    reset_default_cache,
)
from repro.core import DeepMapClassifier
from repro.features import (
    WLVertexFeatures,
    extract_vertex_feature_matrices,
)


def _payload(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"a": rng.normal(size=(4, 3)), "b": np.arange(seed + 2)}


def _assert_payload_equal(got, expected) -> None:
    assert sorted(got) == sorted(expected)
    for name in expected:
        np.testing.assert_array_equal(got[name], expected[name])


class TestTiers:
    def test_memory_roundtrip(self):
        cache = FeatureMapCache()
        key = cache_key("t", 1)
        assert cache.get(key) is None
        cache.put(key, _payload(0))
        _assert_payload_equal(cache.get(key), _payload(0))
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_disk_roundtrip_across_instances(self, tmp_path):
        key = cache_key("t", 2)
        FeatureMapCache(cache_dir=tmp_path).put(key, _payload(3))
        fresh = FeatureMapCache(cache_dir=tmp_path)
        _assert_payload_equal(fresh.get(key), _payload(3))
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 0
        # The disk hit was promoted into the memory tier.
        fresh.get(key)
        assert fresh.stats.memory_hits == 1

    def test_object_dtype_roundtrip(self, tmp_path):
        from collections import Counter

        boxed = np.empty(1, dtype=object)
        boxed[0] = [Counter({("wl", 0, 7): 2}), Counter()]
        key = cache_key("t", 3)
        FeatureMapCache(cache_dir=tmp_path).put(key, {"counts": boxed})
        got = FeatureMapCache(cache_dir=tmp_path).get(key)
        assert list(got["counts"][0]) == list(boxed[0])

    def test_lru_evicts_oldest(self):
        cache = FeatureMapCache(memory_items=2)
        for i in range(3):
            cache.put(f"key-{i}", _payload(i))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("key-0") is None  # oldest dropped
        assert cache.get("key-2") is not None

    def test_lru_touch_on_get(self):
        cache = FeatureMapCache(memory_items=2)
        cache.put("key-0", _payload(0))
        cache.put("key-1", _payload(1))
        cache.get("key-0")  # key-0 becomes most recent
        cache.put("key-2", _payload(2))
        assert cache.get("key-0") is not None
        assert cache.get("key-1") is None

    def test_memory_tier_disabled(self, tmp_path):
        cache = FeatureMapCache(cache_dir=tmp_path, memory_items=0)
        cache.put("key-x", _payload(0))
        assert len(cache) == 0
        assert cache.get("key-x") is not None  # served from disk
        assert cache.stats.disk_hits == 1

    def test_negative_memory_items_rejected(self):
        with pytest.raises(ValueError, match="memory_items"):
            FeatureMapCache(memory_items=-1)


class TestCorruption:
    def test_corrupted_file_is_a_miss_then_recomputes(self, tmp_path):
        key = cache_key("t", 4)
        writer = FeatureMapCache(cache_dir=tmp_path)
        writer.put(key, _payload(5))
        path = next(tmp_path.glob("??/*.npz"))
        path.write_bytes(b"this is not a zip archive")
        reader = FeatureMapCache(cache_dir=tmp_path)
        assert reader.get(key) is None  # corruption -> miss, no raise
        assert reader.stats.errors == 1
        assert reader.stats.misses == 1
        assert not path.exists()  # offending file dropped
        reader.put(key, _payload(5))  # recompute path works
        _assert_payload_equal(
            FeatureMapCache(cache_dir=tmp_path).get(key), _payload(5)
        )

    def test_truncated_file_is_a_miss(self, tmp_path):
        key = cache_key("t", 5)
        writer = FeatureMapCache(cache_dir=tmp_path)
        writer.put(key, _payload(6))
        path = next(tmp_path.glob("??/*.npz"))
        path.write_bytes(path.read_bytes()[:20])
        reader = FeatureMapCache(cache_dir=tmp_path)
        assert reader.get(key) is None
        assert reader.stats.errors == 1

    def test_unwritable_dir_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file where a directory must go")
        cache = FeatureMapCache(cache_dir=blocker)
        cache.put("key-y", _payload(0))  # disk write fails silently
        assert cache.stats.errors == 1
        assert cache.get("key-y") is not None  # memory tier still serves

    def test_pipeline_recovers_from_corruption(self, small_dataset, tmp_path):
        """End to end: corrupt every cached file, the model still fits."""
        graphs, y = small_dataset
        cache = FeatureMapCache(cache_dir=tmp_path)
        model = DeepMapClassifier("wl", r=2, epochs=2, seed=0, cache=cache)
        model.fit(graphs, y)
        preds_cold = model.predict(graphs)
        for path in tmp_path.glob("??/*.npz"):
            path.write_bytes(b"garbage")
        fresh_cache = FeatureMapCache(cache_dir=tmp_path)
        model2 = DeepMapClassifier("wl", r=2, epochs=2, seed=0, cache=fresh_cache)
        model2.fit(graphs, y)
        np.testing.assert_array_equal(model2.predict(graphs), preds_cold)
        assert fresh_cache.stats.errors > 0


class TestMaintenance:
    def test_clear_drops_both_tiers(self, tmp_path):
        cache = FeatureMapCache(cache_dir=tmp_path)
        for i in range(3):
            cache.put(f"key-{i}", _payload(i))
        assert cache.disk_usage()[0] == 3
        assert cache.clear() == 3
        assert cache.disk_usage() == (0, 0)
        assert len(cache) == 0

    def test_disk_usage_counts_bytes(self, tmp_path):
        cache = FeatureMapCache(cache_dir=tmp_path)
        cache.put("key-0", _payload(0))
        entries, size = cache.disk_usage()
        assert entries == 1
        assert size > 0


class TestDefaultCache:
    def test_disabled_by_default(self):
        assert get_cache() is None

    def test_env_variable_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_default_cache()
        cache = get_cache()
        assert cache is not None
        assert cache.cache_dir == tmp_path
        assert get_cache() is cache  # one instance per process

    def test_configure_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        configured = configure(cache_dir=tmp_path / "explicit")
        assert get_cache() is configured

    def test_memory_only_configure(self):
        cache = configure()
        assert cache.cache_dir is None
        cache.put("k", _payload(0))
        assert cache.get("k") is not None


class TestCachedHelpers:
    def test_vfm_hit_is_bitwise_identical(self, small_dataset, tmp_path):
        graphs, _ = small_dataset
        extractor = WLVertexFeatures(h=2)
        cache = FeatureMapCache(cache_dir=tmp_path)
        cold_m, cold_v = extract_vertex_feature_matrices(
            graphs, extractor, cache=cache
        )
        warm_m, warm_v = extract_vertex_feature_matrices(
            graphs, extractor, cache=cache
        )
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert warm_v.keys() == cold_v.keys()
        for a, b in zip(cold_m, warm_m):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_disk_hit_from_fresh_process_state(self, small_dataset, tmp_path):
        """Same dataset, new cache instance: still bitwise identical."""
        graphs, _ = small_dataset
        extractor = WLVertexFeatures(h=2)
        cold_m, cold_v = extract_vertex_feature_matrices(
            graphs, extractor, cache=FeatureMapCache(cache_dir=tmp_path)
        )
        fresh = FeatureMapCache(cache_dir=tmp_path)
        warm_m, warm_v = extract_vertex_feature_matrices(
            graphs, extractor, cache=fresh
        )
        assert fresh.stats.disk_hits == 1
        assert warm_v.keys() == cold_v.keys()
        for a, b in zip(cold_m, warm_m):
            np.testing.assert_array_equal(a, b)

    def test_cache_stats_diff_and_merge_roundtrip(self):
        cache = FeatureMapCache()
        before = cache.stats.as_dict()
        cache.put("k", _payload(0))
        cache.get("k")
        cache.get("missing")
        delta = cache.stats.diff(before)
        assert delta["hits"] == 1 and delta["misses"] == 1
        other = FeatureMapCache()
        other.stats.merge(delta)
        assert other.stats.hits == 1
        assert other.stats.misses == 1
        assert other.stats.stores == 1
