"""Property tests for the content-addressed cache keys.

The cache is only sound if :func:`stable_hash` is (a) *invariant* to
representation details that don't change content — dict insertion
order, list vs tuple, numpy scalar vs Python number, object identity —
and (b) *sensitive* to every hyperparameter that changes an extractor's
output.  Hypothesis hunts for violations of both directions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    cache_key,
    dataset_fingerprint,
    extractor_fingerprint,
    stable_hash,
)
from repro.features import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
    WLVertexFeatures,
)
from repro.graph import Graph

from tests.conftest import random_graphs

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)
keys = st.one_of(st.integers(-100, 100), st.text(max_size=8))


class TestInvariance:
    @given(st.dictionaries(keys, scalars, max_size=8))
    def test_dict_insertion_order_irrelevant(self, d):
        items = list(d.items())
        assert stable_hash(dict(items)) == stable_hash(dict(reversed(items)))

    @given(st.lists(scalars, max_size=8))
    def test_list_and_tuple_agree(self, xs):
        assert stable_hash(xs) == stable_hash(tuple(xs))

    @given(st.integers(-(2**40), 2**40))
    def test_numpy_and_python_ints_agree(self, x):
        assert stable_hash(x) == stable_hash(np.int64(x))

    @given(random_graphs())
    def test_graph_identity_irrelevant(self, g):
        clone = Graph(g.n, [tuple(e) for e in g.edges], g.labels.tolist())
        assert g is not clone
        assert stable_hash(g) == stable_hash(clone)
        assert dataset_fingerprint([g, g]) == dataset_fingerprint([clone, clone])

    @given(st.dictionaries(keys, scalars, max_size=6))
    def test_hash_is_deterministic_across_calls(self, d):
        assert stable_hash(d) == stable_hash(d)


class TestSensitivity:
    @given(st.lists(scalars, min_size=1, max_size=6))
    def test_different_namespaces_never_collide(self, parts):
        assert cache_key("vfm", *parts) != cache_key("counts", *parts)

    @given(random_graphs(min_nodes=2), random_graphs(min_nodes=2))
    def test_dataset_order_matters(self, g1, g2):
        if stable_hash(g1) == stable_hash(g2):
            return  # structurally identical draws fingerprint identically
        assert dataset_fingerprint([g1, g2]) != dataset_fingerprint([g2, g1])

    def test_label_change_changes_graph_hash(self):
        g = Graph(3, [(0, 1), (1, 2)], [0, 0, 0])
        relabeled = g.with_labels([0, 0, 1])
        assert stable_hash(g) != stable_hash(relabeled)

    @settings(max_examples=25)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_graphlet_k_sensitivity(self, k1, k2):
        f1 = extractor_fingerprint(GraphletVertexFeatures(k=k1))
        f2 = extractor_fingerprint(GraphletVertexFeatures(k=k2))
        assert (f1 == f2) == (k1 == k2)

    @settings(max_examples=25)
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_graphlet_seed_sensitivity(self, s1, s2):
        f1 = extractor_fingerprint(GraphletVertexFeatures(seed=s1))
        f2 = extractor_fingerprint(GraphletVertexFeatures(seed=s2))
        assert (f1 == f2) == (s1 == s2)

    @settings(max_examples=25)
    @given(st.integers(0, 8), st.integers(0, 8))
    def test_wl_h_sensitivity(self, h1, h2):
        f1 = extractor_fingerprint(WLVertexFeatures(h=h1))
        f2 = extractor_fingerprint(WLVertexFeatures(h=h2))
        assert (f1 == f2) == (h1 == h2)

    @pytest.mark.parametrize("md1, md2", [(None, 3), (3, 4), (None, 1)])
    def test_sp_max_distance_sensitivity(self, md1, md2):
        f1 = extractor_fingerprint(ShortestPathVertexFeatures(max_distance=md1))
        f2 = extractor_fingerprint(ShortestPathVertexFeatures(max_distance=md2))
        assert f1 != f2

    def test_samples_sensitivity(self):
        assert extractor_fingerprint(
            GraphletVertexFeatures(samples=10)
        ) != extractor_fingerprint(GraphletVertexFeatures(samples=20))

    def test_extractor_class_disambiguates(self):
        """Two extractors with identical params still key differently."""
        assert extractor_fingerprint(WLVertexFeatures(h=3)) != extractor_fingerprint(
            GraphletVertexFeatures(k=3, samples=3, seed=3)
        )


class TestRejection:
    def test_unknown_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="Opaque"):
            stable_hash(Opaque())

    def test_unknown_type_nested_raises(self):
        with pytest.raises(TypeError):
            stable_hash({"ok": [1, 2, object()]})
