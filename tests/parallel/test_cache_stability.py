"""Cache keys across optimization PRs: stability where outputs are
unchanged, deliberate rotation where they are not.

Every hex constant below was captured by running the implementation
*before* the optimization PR it guards.  The content-addressed keys hash
only the cache *inputs* — graph structure, labels, extractor class and
hyperparameters, encoder parameters, plus an explicit ``CACHE_VERSION``
algorithm tag when an extractor declares one — so:

* GK and SP keys are pinned to the pre-vectorization captures and must
  never change: their outputs are bitwise-identical across every PR, so
  pre-PR warm caches must keep hitting;
* WL keys *rotated exactly once*, when the WL colors switched from
  blake2b digests to splitmix64 codes (``CACHE_VERSION =
  "wl-colors/mix64-v2"``).  The old keys are kept here and asserted
  retired — a stale pre-remap WL entry must be unreachable, never
  silently served.

The disk-hit simulations go one step further and place an ``.npz`` at
the literal pinned key: the current lookup must HIT it, not recompute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    FeatureMapCache,
    cache_key,
    dataset_fingerprint,
    extractor_fingerprint,
    stable_hash,
)
from repro.core import DeepMapEncoder
from repro.features import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
    WLVertexFeatures,
    extract_vertex_feature_matrices,
)
from repro.graph import Graph

#: Fingerprint of `_pinned_dataset()` captured at the seed commit.
PRE_PR_DATASET_FP = "ec7333c5e7572cf6fb5de54118daeadd"

#: Stable extractors: (constructor, fingerprint, counts key, vfm key)
#: captured pre-vectorization; bitwise-unchanged outputs, keys must hold.
STABLE_EXTRACTORS = [
    (
        lambda: GraphletVertexFeatures(k=3, samples=5, seed=0),
        "2bf3e5d4cc3ead24d66fbdcfebd38aea",
        "2d33bd3440888fede1fc1eb6f931c8c1",
        "d308cd6ed50dc77a84b483cf071ef943",
    ),
    (
        lambda: ShortestPathVertexFeatures(),
        "712b01bc4da39db7fd181864f4a27f0e",
        "c1ec41afb53c326176ecd447e7282389",
        "52ea30aa23bfa30a03534560ae5ef85b",
    ),
]

#: WL h=2 keys before the color remap (blake2b color era) — retired.
OLD_WL_FP = "ddf25e900aa43fd4a4f8719a5345725e"
OLD_WL_COUNTS_KEY = "e2125e7b4842bcd69df4a5984fc4e6c7"
OLD_WL_VFM_KEY = "3cb68a72dc35c02e926e0013f018ab99"

#: WL h=2 keys under CACHE_VERSION "wl-colors/mix64-v2" (current).
WL_FP = "796dcb8290b751cdc2f26884f494b834"
WL_COUNTS_KEY = "e6cabf6742faee0d73d8ce4436320678"
WL_VFM_KEY = "8003bed5f5614c3ddd5b66688bd68758"

#: Encoder tensor key for SP matrices with r=3, eigenvector, w=6 —
#: captured before the fused-encode PR; SP features are remap-immune, so
#: this pin proves the encoder layer's key scheme (and output) held.
PRE_PR_SP_MATRICES_HASH = "fa53fabde5f14ce436fd8816e0b184a6"
PRE_PR_SP_ENC_KEY = "4d835c650cc3a18508da2d157b454dcd"


def _pinned_dataset() -> list[Graph]:
    g1 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], [0, 1, 0, 1, 2])
    g2 = Graph(4, [(0, 1), (1, 2), (2, 0), (2, 3)], [1, 1, 0, 2])
    g3 = Graph(6, [(0, 1), (1, 2), (3, 4)], [0, 0, 1, 2, 2, 0])
    return [g1, g2, g3]


class TestPinnedKeys:
    def test_dataset_fingerprint_unchanged(self):
        assert dataset_fingerprint(_pinned_dataset()) == PRE_PR_DATASET_FP

    @pytest.mark.parametrize(
        "make,fp,counts_key,vfm_key",
        STABLE_EXTRACTORS,
        ids=["graphlet", "shortest_path"],
    )
    def test_stable_extractor_keys_unchanged(self, make, fp, counts_key, vfm_key):
        extractor = make()
        assert extractor_fingerprint(extractor) == fp
        ds = dataset_fingerprint(_pinned_dataset())
        assert cache_key("counts", ds, fp) == counts_key
        assert cache_key("vfm", ds, fp) == vfm_key

    def test_wl_keys_rotated_exactly_once(self):
        """The remap changed WL outputs, so CACHE_VERSION must have
        moved every WL key off its pre-remap address — and onto the
        pinned current one, so the rotation itself is deterministic."""
        fp = extractor_fingerprint(WLVertexFeatures(h=2))
        assert fp == WL_FP
        assert fp != OLD_WL_FP
        ds = dataset_fingerprint(_pinned_dataset())
        assert cache_key("counts", ds, fp) == WL_COUNTS_KEY != OLD_WL_COUNTS_KEY
        assert cache_key("vfm", ds, fp) == WL_VFM_KEY != OLD_WL_VFM_KEY

    def test_wl_fingerprint_tracks_cache_version(self):
        """A CACHE_VERSION bump alone must rotate the fingerprint."""

        class Bumped(WLVertexFeatures):
            CACHE_VERSION = "wl-colors/test-v999"

        assert extractor_fingerprint(Bumped(h=2)) != extractor_fingerprint(
            WLVertexFeatures(h=2)
        )

    def test_sp_encoder_key_unchanged(self):
        graphs = _pinned_dataset()
        matrices, _ = extract_vertex_feature_matrices(
            graphs, ShortestPathVertexFeatures()
        )
        assert stable_hash(list(matrices)) == PRE_PR_SP_MATRICES_HASH
        key = cache_key(
            "enc", dataset_fingerprint(graphs), stable_hash(list(matrices)),
            3, "eigenvector", 6,
        )
        assert key == PRE_PR_SP_ENC_KEY


class TestPrePrEntriesStillHit:
    @pytest.mark.parametrize(
        "make,vfm_key",
        [
            (STABLE_EXTRACTORS[0][0], STABLE_EXTRACTORS[0][3]),
            (STABLE_EXTRACTORS[1][0], STABLE_EXTRACTORS[1][3]),
        ],
        ids=["graphlet", "shortest_path"],
    )
    def test_simulated_pre_pr_npz_entry_hits(self, tmp_path, make, vfm_key):
        """A .npz written under the pre-PR key is served, not recomputed.

        The payload bytes are legitimate to synthesize with today's code:
        `tests/equivalence/test_pipeline_equiv.py` pins the vectorized
        outputs bitwise to pre-PR digests, so the arrays on disk are
        identical either way.  What this test adds is the *address*
        check — the lookup lands on the literal pinned key.
        """
        graphs = _pinned_dataset()
        extractor = make()
        matrices, vocab = extract_vertex_feature_matrices(graphs, extractor)

        path = tmp_path / vfm_key[:2] / f"{vfm_key}.npz"
        path.parent.mkdir(parents=True)
        boxed = np.empty(1, dtype=object)
        boxed[0] = vocab.keys()
        payload = {f"matrix_{i:05d}": m for i, m in enumerate(matrices)}
        payload["vocab"] = boxed
        np.savez(path, **payload)

        cache = FeatureMapCache(cache_dir=tmp_path)
        got_matrices, got_vocab = extract_vertex_feature_matrices(
            graphs, extractor, cache=cache
        )
        assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
        assert got_vocab.keys() == vocab.keys()
        for got, want in zip(got_matrices, matrices):
            assert got.tobytes() == want.tobytes()

    def test_stale_pre_remap_wl_entry_is_never_served(self, tmp_path):
        """An entry parked at the OLD WL key must be ignored — the
        rotated fingerprint makes it unreachable, forcing a recompute
        under the new color scheme instead of serving stale colors."""
        graphs = _pinned_dataset()
        path = tmp_path / OLD_WL_VFM_KEY[:2] / f"{OLD_WL_VFM_KEY}.npz"
        path.parent.mkdir(parents=True)
        np.savez(path, poison=np.zeros(1))

        cache = FeatureMapCache(cache_dir=tmp_path)
        extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=2), cache=cache)
        assert cache.stats.disk_hits == 0
        assert cache.stats.misses == 1
        assert (tmp_path / WL_VFM_KEY[:2] / f"{WL_VFM_KEY}.npz").exists()

    def test_warm_cache_round_trips_through_fused_encode(self, tmp_path):
        """Cold write then warm read of the full encode path, same bits,
        landing on the pre-PR SP encoder key."""
        graphs = _pinned_dataset()
        cache = FeatureMapCache(cache_dir=tmp_path)
        matrices, _ = extract_vertex_feature_matrices(
            graphs, ShortestPathVertexFeatures(), cache=cache
        )
        cold = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices, cache=cache)
        enc_path = tmp_path / PRE_PR_SP_ENC_KEY[:2] / f"{PRE_PR_SP_ENC_KEY}.npz"
        assert enc_path.exists()

        fresh = FeatureMapCache(cache_dir=tmp_path)  # disk tier only
        warm = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices, cache=fresh)
        assert fresh.stats.disk_hits == 1
        assert warm.tensors.tobytes() == cold.tensors.tobytes()
        assert warm.vertex_mask.tobytes() == cold.vertex_mask.tobytes()
