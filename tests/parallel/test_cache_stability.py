"""Cache keys must survive the hot-path vectorization unchanged.

Every hex constant below was captured by running the *original*
(pre-vectorization) implementations.  The content-addressed keys hash
only the cache *inputs* — graph structure, labels, extractor class and
hyperparameters, encoder parameters — so an output-equivalent rewrite
of the compute paths must reproduce them exactly.  If any assertion
here fails, warm caches written before this PR would silently go cold
(or worse, a key scheme change could alias distinct payloads).

The final test goes one step further and simulates a pre-PR on-disk
``.npz`` entry at the pinned key: the vectorized extraction path must
HIT it, not recompute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    FeatureMapCache,
    cache_key,
    dataset_fingerprint,
    extractor_fingerprint,
    stable_hash,
)
from repro.core import DeepMapEncoder
from repro.features import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
    WLVertexFeatures,
    extract_vertex_feature_matrices,
)
from repro.graph import Graph

#: Fingerprint of `_pinned_dataset()` captured at the seed commit.
PRE_PR_DATASET_FP = "ec7333c5e7572cf6fb5de54118daeadd"

#: Per-extractor pins: (constructor, fingerprint, counts key, vfm key).
PRE_PR_EXTRACTORS = [
    (
        lambda: GraphletVertexFeatures(k=3, samples=5, seed=0),
        "2bf3e5d4cc3ead24d66fbdcfebd38aea",
        "2d33bd3440888fede1fc1eb6f931c8c1",
        "d308cd6ed50dc77a84b483cf071ef943",
    ),
    (
        lambda: ShortestPathVertexFeatures(),
        "712b01bc4da39db7fd181864f4a27f0e",
        "c1ec41afb53c326176ecd447e7282389",
        "52ea30aa23bfa30a03534560ae5ef85b",
    ),
    (
        lambda: WLVertexFeatures(h=2),
        "ddf25e900aa43fd4a4f8719a5345725e",
        "e2125e7b4842bcd69df4a5984fc4e6c7",
        "3cb68a72dc35c02e926e0013f018ab99",
    ),
]

#: Encoder tensor key for WL h=2 matrices with r=3, eigenvector, w=6.
PRE_PR_MATRICES_HASH = "b2d3a5821f5d49c6a9231eca63f0a268"
PRE_PR_ENC_KEY = "dd8947842e77113fce56bf0c5a76438d"

#: The WL h=2 vertex-feature-map key, reused by the disk-hit simulation.
PRE_PR_WL_VFM_KEY = PRE_PR_EXTRACTORS[2][3]


def _pinned_dataset() -> list[Graph]:
    g1 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], [0, 1, 0, 1, 2])
    g2 = Graph(4, [(0, 1), (1, 2), (2, 0), (2, 3)], [1, 1, 0, 2])
    g3 = Graph(6, [(0, 1), (1, 2), (3, 4)], [0, 0, 1, 2, 2, 0])
    return [g1, g2, g3]


class TestPinnedKeys:
    def test_dataset_fingerprint_unchanged(self):
        assert dataset_fingerprint(_pinned_dataset()) == PRE_PR_DATASET_FP

    @pytest.mark.parametrize(
        "make,fp,counts_key,vfm_key",
        PRE_PR_EXTRACTORS,
        ids=["graphlet", "shortest_path", "wl"],
    )
    def test_extractor_keys_unchanged(self, make, fp, counts_key, vfm_key):
        extractor = make()
        assert extractor_fingerprint(extractor) == fp
        ds = dataset_fingerprint(_pinned_dataset())
        assert cache_key("counts", ds, fp) == counts_key
        assert cache_key("vfm", ds, fp) == vfm_key

    def test_encoder_key_unchanged(self):
        graphs = _pinned_dataset()
        matrices, _ = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=2))
        assert stable_hash(list(matrices)) == PRE_PR_MATRICES_HASH
        key = cache_key(
            "enc", dataset_fingerprint(graphs), stable_hash(list(matrices)),
            3, "eigenvector", 6,
        )
        assert key == PRE_PR_ENC_KEY


class TestPrePrEntriesStillHit:
    def test_simulated_pre_pr_npz_entry_hits(self, tmp_path):
        """A .npz written under the pre-PR key is served, not recomputed.

        The payload bytes are legitimate to synthesize with today's code:
        `tests/equivalence/test_pipeline_equiv.py` pins the vectorized
        outputs bitwise to pre-PR digests, so the arrays on disk are
        identical either way.  What this test adds is the *address*
        check — the lookup lands on the literal pinned key.
        """
        graphs = _pinned_dataset()
        extractor = WLVertexFeatures(h=2)
        matrices, vocab = extract_vertex_feature_matrices(graphs, extractor)

        path = tmp_path / PRE_PR_WL_VFM_KEY[:2] / f"{PRE_PR_WL_VFM_KEY}.npz"
        path.parent.mkdir(parents=True)
        boxed = np.empty(1, dtype=object)
        boxed[0] = vocab.keys()
        payload = {f"matrix_{i:05d}": m for i, m in enumerate(matrices)}
        payload["vocab"] = boxed
        np.savez(path, **payload)

        cache = FeatureMapCache(cache_dir=tmp_path)
        got_matrices, got_vocab = extract_vertex_feature_matrices(
            graphs, extractor, cache=cache
        )
        assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
        assert got_vocab.keys() == vocab.keys()
        for got, want in zip(got_matrices, matrices):
            assert got.tobytes() == want.tobytes()

    def test_warm_cache_round_trips_through_vectorized_encode(self, tmp_path):
        """Cold write then warm read of the full encode path, same bits."""
        graphs = _pinned_dataset()
        cache = FeatureMapCache(cache_dir=tmp_path)
        matrices, _ = extract_vertex_feature_matrices(
            graphs, WLVertexFeatures(h=2), cache=cache
        )
        cold = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices, cache=cache)
        assert (tmp_path / PRE_PR_ENC_KEY[:2] / f"{PRE_PR_ENC_KEY}.npz").exists()

        fresh = FeatureMapCache(cache_dir=tmp_path)  # disk tier only
        warm = DeepMapEncoder(r=3).fit(graphs).encode(graphs, matrices, cache=fresh)
        assert fresh.stats.disk_hits == 1
        assert warm.tensors.tobytes() == cold.tensors.tobytes()
        assert warm.vertex_mask.tobytes() == cold.vertex_mask.tobytes()
