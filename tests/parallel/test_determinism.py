"""Determinism regressions: same seed, same bits — with or without cache.

The cache can only be content-addressed if every producer is a pure
function of (content, config, seed).  These tests pin that property for
the full classifier and for the one stochastic extractor (graphlet
sampling), whose RNG stream is derived from graph *content* rather than
dataset position.
"""

from __future__ import annotations

import numpy as np

from repro import cache as cache_mod
from repro.cache import FeatureMapCache, stable_hash
from repro.core import DeepMapClassifier, deepmap_wl
from repro.features import GraphletVertexFeatures
from repro.graph import Graph

# Triangle 0-1-2 with a tail 2-3-4: rooted 3-graphlets mix triangles and
# paths, so the sampled histograms genuinely depend on the RNG stream.
LOLLIPOP = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], [0, 1, 0, 1, 0])
# K4 minus the (0, 3) edge.
DIAMOND = Graph(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)], [0, 0, 1, 1])


def _weights(model: DeepMapClassifier) -> list[np.ndarray]:
    assert model.network_ is not None
    return [np.asarray(p.value) for p in model.network_.parameters()]


class TestClassifierDeterminism:
    def test_two_fits_identical_weights_and_predictions(self, small_dataset):
        graphs, y = small_dataset
        runs = []
        for _ in range(2):
            model = deepmap_wl(h=1, r=2, epochs=3, seed=7)
            model.fit(graphs, y)
            runs.append(model)
        a, b = runs
        weights_a, weights_b = _weights(a), _weights(b)
        assert len(weights_a) == len(weights_b) > 0
        for wa, wb in zip(weights_a, weights_b):
            np.testing.assert_array_equal(wa, wb)
        np.testing.assert_array_equal(a.predict(graphs), b.predict(graphs))
        assert a.history_.loss == b.history_.loss
        assert a.history_.train_accuracy == b.history_.train_accuracy

    def test_warm_cache_fit_matches_uncached_fit(self, small_dataset, tmp_path):
        graphs, y = small_dataset

        def fit(cache):
            model = deepmap_wl(h=1, r=2, epochs=3, seed=7, cache=cache)
            model.fit(graphs, y)
            return model

        baseline = fit(cache=None)
        assert cache_mod.get_cache() is None  # truly uncached
        cache = FeatureMapCache(cache_dir=tmp_path)
        fit(cache)  # cold: populates the cache
        warm = fit(cache)  # warm: replays cached artifacts
        assert cache.stats.hits > 0
        for wa, wb in zip(_weights(baseline), _weights(warm)):
            np.testing.assert_array_equal(wa, wb)
        np.testing.assert_array_equal(
            baseline.predict(graphs), warm.predict(graphs)
        )


class TestGraphletSamplingDeterminism:
    """Per-graph streams derive from content, not dataset position."""

    def test_independent_of_dataset_order(self):
        ex = GraphletVertexFeatures(k=3, samples=7, seed=11)
        solo = {
            "lolli": ex.extract([LOLLIPOP])[0],
            "diamond": ex.extract([DIAMOND])[0],
        }
        forward = ex.extract([LOLLIPOP, DIAMOND])
        backward = ex.extract([DIAMOND, LOLLIPOP])
        assert forward[0] == solo["lolli"] == backward[1]
        assert forward[1] == solo["diamond"] == backward[0]

    def test_pinned_sampled_counts(self):
        """Regression pin: the exact sampled histograms for seed 11.

        If this breaks, the graphlet RNG derivation changed — every
        cached "counts"/"vfm" entry for GK features is silently stale
        and cache keys must be revisited.
        """
        ex = GraphletVertexFeatures(k=3, samples=7, seed=11)
        lolli = ex.extract([LOLLIPOP])[0]
        diamond = ex.extract([DIAMOND])[0]
        assert stable_hash([dict(c) for c in lolli]) == (
            "e10bc18e06f699eafad83432eeb3f751"
        )
        assert stable_hash([dict(c) for c in diamond]) == (
            "dfcbf6c7d672f3fbed5cac28da919837"
        )
        # One spelled-out vertex: the triangle apex of the lollipop.
        assert dict(lolli[2]) == {("glet", 3, 6): 3, ("glet", 3, 7): 4}

    def test_every_vertex_draws_its_sample_budget(self):
        ex = GraphletVertexFeatures(k=3, samples=7, seed=11)
        for counts in ex.extract([LOLLIPOP, DIAMOND]):
            assert [sum(c.values()) for c in counts] == [7] * len(counts)

    def test_seed_changes_samples(self):
        a = GraphletVertexFeatures(k=3, samples=7, seed=11).extract([LOLLIPOP])
        b = GraphletVertexFeatures(k=3, samples=7, seed=12).extract([LOLLIPOP])
        assert a != b

    def test_label_change_changes_stream(self):
        """Content-derived streams depend on labels too, so a relabeled
        graph cannot silently reuse the original graph's sample stream.
        (The structural histograms may coincide; the streams must not.)"""
        from repro.utils.rng import derive_rng

        relabeled = LOLLIPOP.with_labels([1, 1, 1, 1, 1])

        def stream(g):
            rng = derive_rng(
                11, str(g.n).encode(), g.edges.tobytes(), g.labels.tobytes()
            )
            return rng.integers(0, 2**63, size=4).tolist()

        assert stream(LOLLIPOP) != stream(relabeled)
        assert stream(LOLLIPOP) == stream(LOLLIPOP)  # and they are stable
