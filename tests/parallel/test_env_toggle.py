"""The ``REPRO_WORKERS`` env toggle: the whole protocol layer obeys it.

CI runs the tier-1 suite under ``REPRO_WORKERS=2`` to prove the fork
path is exercised by the same tests that pin the serial numbers; these
tests prove the toggle actually reroutes ``workers=None`` callers and
keeps the results bitwise identical.
"""

from __future__ import annotations

import os

import pytest

from repro.core import deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import WeisfeilerLehmanKernel
from repro.parallel import WORKERS_ENV, parallelism_available, run_folds

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


def _pid(context, payload):
    return os.getpid()


@needs_fork
class TestEnvToggle:
    def test_env_reroutes_default_callers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        pids = run_folds(_pid, [0, 1], workers=None)
        assert os.getpid() not in pids

    def test_explicit_workers_override_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        pids = run_folds(_pid, [0, 1], workers=1)
        assert pids == [os.getpid()] * 2

    def test_kernel_protocol_identical_under_env(self, cv_dataset, monkeypatch):
        serial = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=5, workers=1
        )
        monkeypatch.setenv(WORKERS_ENV, "2")
        toggled = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=5
        )
        assert toggled.fold_accuracies == serial.fold_accuracies
        assert toggled.extra["selected_c"] == serial.extra["selected_c"]

    def test_neural_protocol_identical_under_env(self, cv_dataset, monkeypatch):
        factory = lambda fold: deepmap_wl(h=1, r=2, epochs=3, seed=fold)
        serial = evaluate_neural_model(
            factory, cv_dataset, n_splits=3, seed=5, workers=1
        )
        monkeypatch.setenv(WORKERS_ENV, "2")
        toggled = evaluate_neural_model(factory, cv_dataset, n_splits=3, seed=5)
        assert toggled.fold_accuracies == serial.fold_accuracies
        assert toggled.best_epoch == serial.best_epoch
        assert toggled.extra["fold_val_curves"] == serial.extra["fold_val_curves"]
