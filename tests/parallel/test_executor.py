"""The fold executor: worker resolution, ordering, fallback, merging."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import cache as cache_mod
from repro import obs
from repro.parallel import (
    WORKERS_ENV,
    parallelism_available,
    resolve_workers,
    run_folds,
)

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


# Pool targets must be module-level so fork workers can address them.
def _identify(context, payload):
    return {"payload": payload, "context": context, "pid": os.getpid()}


def _call_context(context, payload):
    return context() + payload


def _observe(context, payload):
    with obs.span("fold", fold=payload):
        obs.counter("widgets_total").inc(payload)
    return payload


def _use_cache(context, payload):
    cache = cache_mod.get_cache()
    assert cache is not None, "workers must inherit the configured cache"
    key = f"{'k' * 30}{payload:02d}"
    if cache.get(key, namespace="t") is None:
        import numpy as np

        cache.put(key, {"x": np.full(3, payload)}, namespace="t")
    return payload


def _nested(context, payload):
    # Two inner payloads + workers=4 would fork a pool, were it allowed.
    inner = run_folds(_identify, [payload, payload + 1], context=None, workers=4)
    return {
        "daemon": multiprocessing.current_process().daemon,
        "inner_pids": [r["pid"] for r in inner],
    }


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers(None) == 1

    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("requested", [0, -1])
    def test_nonpositive_means_all_cpus(self, requested):
        assert resolve_workers(requested) == (os.cpu_count() or 1)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers(None)

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1


class TestRunFolds:
    def test_serial_runs_in_process(self):
        results = run_folds(_identify, [1, 2], context="ctx", workers=1)
        assert [r["payload"] for r in results] == [1, 2]
        assert {r["pid"] for r in results} == {os.getpid()}
        assert all(r["context"] == "ctx" for r in results)

    def test_empty_payloads(self):
        assert run_folds(_identify, [], workers=4) == []

    @needs_fork
    def test_parallel_results_in_payload_order(self):
        results = run_folds(_identify, list(range(8)), context="ctx", workers=4)
        assert [r["payload"] for r in results] == list(range(8))
        assert all(r["context"] == "ctx" for r in results)

    @needs_fork
    def test_parallel_runs_in_child_processes(self):
        results = run_folds(_identify, list(range(4)), workers=4)
        assert os.getpid() not in {r["pid"] for r in results}

    @needs_fork
    def test_unpicklable_context_is_inherited(self):
        """Closures travel by fork inheritance, not through the pipe."""
        bound = {"offset": 40}
        results = run_folds(
            _call_context, [1, 2], context=lambda: bound["offset"], workers=2
        )
        assert results == [41, 42]

    @needs_fork
    def test_nested_run_folds_degrades_to_serial(self):
        """Daemonic pool workers cannot fork; inner calls must not crash."""
        results = run_folds(_nested, [1, 3], workers=2)
        assert all(r["daemon"] for r in results)
        # The inner run_folds ran serially inside the (child) worker:
        # both inner payloads report the worker's own pid.
        for r in results:
            assert len(set(r["inner_pids"])) == 1
            assert os.getpid() not in r["inner_pids"]


@needs_fork
class TestObsMerging:
    def test_spans_and_counters_match_serial(self):
        def record(workers):
            obs.reset()
            obs.enable()
            try:
                with obs.span("cv"):
                    run_folds(_observe, [1, 2, 3, 4], workers=workers)
                paths = [
                    f"{root.name}/{child.name}"
                    for root in obs.get_tracer().roots
                    for child in root.children
                ]
                value = obs.get_metrics().snapshot()["widgets_total"]["value"]
            finally:
                obs.disable()
                obs.reset()
            return paths, value

        serial_paths, serial_value = record(workers=1)
        parallel_paths, parallel_value = record(workers=4)
        assert sorted(parallel_paths) == sorted(serial_paths) == ["cv/fold"] * 4
        assert parallel_value == serial_value == 10.0

    def test_disabled_obs_stays_disabled(self):
        assert not obs.enabled()
        run_folds(_observe, [1, 2], workers=2)
        assert obs.get_tracer().roots == []


@needs_fork
class TestCacheStatsMerging:
    def test_worker_misses_and_stores_reach_parent(self, tmp_path):
        cache = cache_mod.configure(cache_dir=tmp_path)
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        assert cache.stats.misses == 4
        assert cache.stats.stores == 4
        assert cache.stats.hits == 0
        assert cache.disk_usage()[0] == 4

    def test_warm_run_reports_disk_hits(self, tmp_path):
        cache = cache_mod.configure(cache_dir=tmp_path)
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        before = cache.stats.as_dict()
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        delta = cache.stats.diff(before)
        assert delta["hits"] == 4
        assert delta["disk_hits"] == 4
        assert delta["misses"] == 0

    def test_no_cache_configured_is_fine(self):
        assert cache_mod.get_cache() is None
        results = run_folds(_identify, [1, 2], workers=2)
        assert [r["payload"] for r in results] == [1, 2]
