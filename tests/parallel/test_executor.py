"""The fold executor: worker resolution, ordering, fallback, merging."""

from __future__ import annotations

import os

import pytest

from repro import cache as cache_mod
from repro import obs
from repro.parallel import (
    WORKERS_ENV,
    FoldError,
    parallelism_available,
    resolve_workers,
    run_folds,
)

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


# Pool targets must be module-level so fork workers can address them.
def _identify(context, payload):
    return {"payload": payload, "context": context, "pid": os.getpid()}


def _call_context(context, payload):
    return context() + payload


def _observe(context, payload):
    with obs.span("fold", fold=payload):
        obs.counter("widgets_total").inc(payload)
    return payload


def _use_cache(context, payload):
    cache = cache_mod.get_cache()
    assert cache is not None, "workers must inherit the configured cache"
    key = f"{'k' * 30}{payload:02d}"
    if cache.get(key, namespace="t") is None:
        import numpy as np

        cache.put(key, {"x": np.full(3, payload)}, namespace="t")
    return payload


def _nested(context, payload):
    # Two inner payloads + workers=4 would fork a pool, were it allowed.
    inner = run_folds(_identify, [payload, payload + 1], context=None, workers=4)
    return {
        "parallel_ok": parallelism_available(),
        "inner_pids": [r["pid"] for r in inner],
    }


def _fail_on(context, payload):
    if payload == context:
        raise ValueError(f"boom on {payload}")
    return payload


def _die_once(context, payload):
    # Kills its worker the first time payload 3 is attempted; a marker
    # file (context is a tmp dir) makes the retry succeed.
    if payload == 3:
        marker = os.path.join(context, "died-once")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(70)
    return payload * 10


def _die_in_worker_only(context, payload):
    from repro import parallel

    if payload == context:
        if parallel._IN_FOLD_WORKER:
            os._exit(70)
        return payload * 100
    return payload


class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers(None) == 1

    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("requested", [0, -1])
    def test_nonpositive_means_all_cpus(self, requested):
        assert resolve_workers(requested) == (os.cpu_count() or 1)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers(None)

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1


class TestRunFolds:
    def test_serial_runs_in_process(self):
        results = run_folds(_identify, [1, 2], context="ctx", workers=1)
        assert [r["payload"] for r in results] == [1, 2]
        assert {r["pid"] for r in results} == {os.getpid()}
        assert all(r["context"] == "ctx" for r in results)

    def test_empty_payloads(self):
        assert run_folds(_identify, [], workers=4) == []

    @needs_fork
    def test_parallel_results_in_payload_order(self):
        results = run_folds(_identify, list(range(8)), context="ctx", workers=4)
        assert [r["payload"] for r in results] == list(range(8))
        assert all(r["context"] == "ctx" for r in results)

    @needs_fork
    def test_parallel_runs_in_child_processes(self):
        results = run_folds(_identify, list(range(4)), workers=4)
        assert os.getpid() not in {r["pid"] for r in results}

    @needs_fork
    def test_unpicklable_context_is_inherited(self):
        """Closures travel by fork inheritance, not through the pipe."""
        bound = {"offset": 40}
        results = run_folds(
            _call_context, [1, 2], context=lambda: bound["offset"], workers=2
        )
        assert results == [41, 42]

    @needs_fork
    def test_nested_run_folds_degrades_to_serial(self):
        """Pool workers must not fork pools; inner calls must not crash."""
        results = run_folds(_nested, [1, 3], workers=2)
        assert not any(r["parallel_ok"] for r in results)
        # The inner run_folds ran serially inside the (child) worker:
        # both inner payloads report the worker's own pid.
        for r in results:
            assert len(set(r["inner_pids"])) == 1
            assert os.getpid() not in r["inner_pids"]

    def test_serial_on_result_fires_in_order(self):
        seen = []
        run_folds(
            _identify,
            [10, 11, 12],
            workers=1,
            on_result=lambda i, r: seen.append((i, r["payload"])),
        )
        assert seen == [(0, 10), (1, 11), (2, 12)]

    @needs_fork
    def test_parallel_on_result_sees_every_fold(self):
        seen = []
        run_folds(
            _identify,
            list(range(6)),
            workers=3,
            on_result=lambda i, r: seen.append((i, r["payload"])),
        )
        assert sorted(seen) == [(i, i) for i in range(6)]


@needs_fork
class TestCrashResilience:
    def test_worker_exception_surfaces_traceback(self):
        with pytest.raises(FoldError) as excinfo:
            run_folds(_fail_on, [0, 1, 2, 3], context=2, workers=2)
        message = str(excinfo.value)
        assert "boom on 2" in message  # the original error text
        assert "_fail_on" in message  # the worker's stack frame
        assert excinfo.value.index == 2

    def test_worker_death_requeues_on_fresh_pool(self, tmp_path):
        """A fold that kills its worker only on the first try recovers."""
        results = run_folds(_die_once, [0, 1, 2, 3], context=str(tmp_path), workers=2)
        assert results == [0, 10, 20, 30]
        assert (tmp_path / "died-once").exists()

    def test_worker_death_every_time_degrades_to_serial(self):
        """When the pool keeps breaking, the parent finishes serially."""
        # _die_in_worker_only kills any *worker* handling payload 1, on
        # every attempt — all pool retries break, so fold 1 must finish
        # in the parent (where _IN_FOLD_WORKER is False → returns 100).
        results = run_folds(_die_in_worker_only, [0, 1, 2], context=1, workers=2)
        assert results == [0, 100, 2]


@needs_fork
class TestObsMerging:
    def test_spans_and_counters_match_serial(self):
        def record(workers):
            obs.reset()
            obs.enable()
            try:
                with obs.span("cv"):
                    run_folds(_observe, [1, 2, 3, 4], workers=workers)
                paths = [
                    f"{root.name}/{child.name}"
                    for root in obs.get_tracer().roots
                    for child in root.children
                ]
                value = obs.get_metrics().snapshot()["widgets_total"]["value"]
            finally:
                obs.disable()
                obs.reset()
            return paths, value

        serial_paths, serial_value = record(workers=1)
        parallel_paths, parallel_value = record(workers=4)
        assert sorted(parallel_paths) == sorted(serial_paths) == ["cv/fold"] * 4
        assert parallel_value == serial_value == 10.0

    def test_disabled_obs_stays_disabled(self):
        assert not obs.enabled()
        run_folds(_observe, [1, 2], workers=2)
        assert obs.get_tracer().roots == []


@needs_fork
class TestCacheStatsMerging:
    def test_worker_misses_and_stores_reach_parent(self, tmp_path):
        cache = cache_mod.configure(cache_dir=tmp_path)
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        assert cache.stats.misses == 4
        assert cache.stats.stores == 4
        assert cache.stats.hits == 0
        assert cache.disk_usage()[0] == 4

    def test_warm_run_reports_disk_hits(self, tmp_path):
        cache = cache_mod.configure(cache_dir=tmp_path)
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        before = cache.stats.as_dict()
        run_folds(_use_cache, [0, 1, 2, 3], workers=2)
        delta = cache.stats.diff(before)
        assert delta["hits"] == 4
        assert delta["disk_hits"] == 4
        assert delta["misses"] == 0

    def test_no_cache_configured_is_fine(self):
        assert cache_mod.get_cache() is None
        results = run_folds(_identify, [1, 2], workers=2)
        assert [r["payload"] for r in results] == [1, 2]
