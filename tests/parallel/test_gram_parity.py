"""Kernel-SVM cross-validation on the one-GEMM gram path: fork-pool parity.

The gram matrix is assembled once (one GEMM / count-matrix pass) and the
folds only index into it, so cross-validation through the fork pool must
be bitwise-identical to the sequential loop at every worker count — any
divergence would mean the vectorized assembly leaks batch- or
process-dependent state into the fold results.
"""

from __future__ import annotations

import pytest

from repro.eval.protocol import evaluate_kernel_svm
from repro.features import WLVertexFeatures
from repro.kernels.base import ExplicitFeatureKernel
from repro.kernels.optimal_assignment import WLOptimalAssignmentKernel
from repro.parallel import parallelism_available

pytestmark = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


def _run(kernel, dataset, workers):
    result = evaluate_kernel_svm(
        kernel, dataset, n_splits=4, seed=11, workers=workers
    )
    return result.fold_accuracies, result.extra["selected_c"]


class TestKernelCVParity:
    def test_wl_gemm_gram_cv_parity_across_worker_counts(self, cv_dataset):
        kernel = ExplicitFeatureKernel(WLVertexFeatures(h=2))
        baseline = _run(kernel, cv_dataset, workers=1)
        for workers in (2, 3, 4):
            assert _run(kernel, cv_dataset, workers) == baseline, (
                f"workers={workers}"
            )

    def test_wloa_count_matrix_cv_parity(self, cv_dataset):
        kernel = WLOptimalAssignmentKernel(h=2)
        baseline = _run(kernel, cv_dataset, workers=1)
        for workers in (2, 4):
            assert _run(kernel, cv_dataset, workers) == baseline, (
                f"workers={workers}"
            )

    def test_gemm_and_reference_gram_reach_identical_cv(self, cv_dataset):
        """End-to-end: swapping the assembly for the per-pair oracle
        changes nothing downstream (the gram bytes are equal)."""
        kernel = ExplicitFeatureKernel(WLVertexFeatures(h=2))

        class OracleShim:
            name = kernel.name

            def gram(self, graphs):
                return kernel._reference_gram(graphs)

        fast = evaluate_kernel_svm(kernel, cv_dataset, n_splits=4, seed=3)
        slow = evaluate_kernel_svm(OracleShim(), cv_dataset, n_splits=4, seed=3)
        assert fast.fold_accuracies == slow.fold_accuracies
        assert fast.extra["selected_c"] == slow.extra["selected_c"]
