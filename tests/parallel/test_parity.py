"""Serial vs parallel CV must be bitwise identical (the PR's contract).

Every comparison below is exact equality — no tolerances.  The fold
seeds are spawned up front in the parent, so fold *k* sees the same
RNG stream whether it runs in-process or in a forked worker, and the
executor returns results in payload order regardless of completion
order.
"""

from __future__ import annotations

import pytest

from repro.core import deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import WeisfeilerLehmanKernel
from repro.parallel import parallelism_available

pytestmark = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


def _strip_timings(result):
    """CVResult.extra minus wall-clock noise (the only legitimate delta)."""
    return {k: v for k, v in result.extra.items() if k != "fold_seconds"}


class TestKernelParity:
    def test_bitwise_identical_results(self, cv_dataset):
        kwargs = dict(n_splits=4, seed=3)
        serial = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, workers=1, **kwargs
        )
        parallel = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, workers=4, **kwargs
        )
        assert parallel.fold_accuracies == serial.fold_accuracies
        assert parallel.best_epoch == serial.best_epoch
        assert _strip_timings(parallel) == _strip_timings(serial)
        assert parallel.name == serial.name

    def test_fold_order_preserved(self, cv_dataset):
        """selected_c[k] belongs to fold k, not to whichever finished first."""
        serial = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=9, workers=1
        )
        parallel = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=9, workers=2
        )
        assert parallel.extra["selected_c"] == serial.extra["selected_c"]

    def test_different_seeds_still_differ(self, cv_dataset):
        """Parity is not degeneracy: changing the seed changes the folds."""
        a = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=0, workers=2
        )
        b = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=123, workers=2
        )
        assert a.fold_accuracies != b.fold_accuracies


class TestNeuralParity:
    @pytest.fixture(scope="class")
    def factory(self):
        return lambda fold: deepmap_wl(h=1, r=2, epochs=4, seed=fold)

    def test_bitwise_identical_results(self, cv_dataset, factory):
        kwargs = dict(n_splits=3, seed=1, name="deepmap-wl")
        serial = evaluate_neural_model(factory, cv_dataset, workers=1, **kwargs)
        parallel = evaluate_neural_model(factory, cv_dataset, workers=3, **kwargs)
        assert parallel.fold_accuracies == serial.fold_accuracies
        assert parallel.best_epoch == serial.best_epoch
        assert _strip_timings(parallel) == _strip_timings(serial)

    def test_val_curves_identical_per_fold(self, cv_dataset, factory):
        serial = evaluate_neural_model(
            factory, cv_dataset, n_splits=3, seed=2, workers=1
        )
        parallel = evaluate_neural_model(
            factory, cv_dataset, n_splits=3, seed=2, workers=3
        )
        assert parallel.extra["fold_val_curves"] == serial.extra["fold_val_curves"]
        assert parallel.extra["mean_curve"] == serial.extra["mean_curve"]
