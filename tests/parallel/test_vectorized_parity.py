"""Vectorized encoder under the fork pool: serial == parallel, bitwise.

The hot-path vectorization (batched BFS, lexsort receptive fields,
np.unique WL refinement, im2col Conv1D) must not introduce any
worker-count dependence: encoding the same fold payload in a forked
worker has to produce byte-identical tensors to the in-process loop.
These tests drive :func:`repro.parallel.run_folds` directly over the
vectorized encode path and compare raw bytes across worker counts.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import DeepMapEncoder
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices
from repro.parallel import parallelism_available, run_folds

pytestmark = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


def _encode_chunk(context, payload):
    """Fold body: encode one chunk of the dataset, return digest + bytes."""
    graphs = context
    lo, hi = payload
    chunk = graphs[lo:hi]
    matrices, _ = extract_vertex_feature_matrices(chunk, WLVertexFeatures(h=2))
    encoded = DeepMapEncoder(r=4).fit(chunk).encode(chunk, matrices)
    digest = hashlib.blake2b(
        encoded.tensors.tobytes() + encoded.vertex_mask.tobytes(), digest_size=16
    ).hexdigest()
    return {
        "digest": digest,
        "tensors": encoded.tensors,
        "mask": encoded.vertex_mask,
        "shape": encoded.tensors.shape,
    }


def _chunks(n_graphs: int, n_folds: int) -> list[tuple[int, int]]:
    step = max(1, n_graphs // n_folds)
    return [(lo, min(lo + step, n_graphs)) for lo in range(0, n_graphs, step)]


class TestEncodeParity:
    @pytest.fixture(scope="class")
    def graphs(self, cv_dataset):
        return cv_dataset.graphs

    def test_serial_and_parallel_encode_bitwise_identical(self, graphs):
        payloads = _chunks(len(graphs), 4)
        serial = run_folds(_encode_chunk, payloads, context=graphs, workers=1)
        forked = run_folds(_encode_chunk, payloads, context=graphs, workers=2)
        assert len(serial) == len(forked) == len(payloads)
        for s, f in zip(serial, forked):
            assert f["digest"] == s["digest"]
            assert f["shape"] == s["shape"]
            assert f["tensors"].tobytes() == s["tensors"].tobytes()
            assert f["mask"].tobytes() == s["mask"].tobytes()

    def test_worker_count_irrelevant(self, graphs):
        """2, 3, and 4 workers all reproduce the same fold digests."""
        payloads = _chunks(len(graphs), 4)
        baseline = [r["digest"] for r in run_folds(
            _encode_chunk, payloads, context=graphs, workers=1
        )]
        for workers in (2, 3, 4):
            digests = [r["digest"] for r in run_folds(
                _encode_chunk, payloads, context=graphs, workers=workers
            )]
            assert digests == baseline, f"workers={workers}"

    def test_parallel_tensors_are_real_arrays(self, graphs):
        """Pickled-across-the-pipe tensors stay float64 and C-contiguous."""
        payloads = _chunks(len(graphs), 2)
        for result in run_folds(_encode_chunk, payloads, context=graphs, workers=2):
            t = result["tensors"]
            assert t.dtype == np.float64 and t.flags["C_CONTIGUOUS"]
            assert np.isfinite(t).all()
