"""Fixtures for the checkpoint/resume + fault-injection test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.datasets import GraphDataset
from repro.graph import ensure_connected, erdos_renyi
from repro.parallel import WORKERS_ENV
from repro.resilience import checkpoint as checkpoint_mod
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """No inherited fault plan, cache, or worker env leaks between tests.

    The ``checkpoint_write`` fault coordinate is a process-wide write
    ordinal; reset it so each test's plan addresses write 0 onward.
    """
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    monkeypatch.delenv(cache_mod.CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    faults.clear()
    cache_mod.reset_default_cache()
    checkpoint_mod._write_index = 0
    yield
    faults.clear()
    cache_mod.reset_default_cache()
    checkpoint_mod._write_index = 0


@pytest.fixture(scope="module")
def cv_dataset() -> GraphDataset:
    """16 connected labeled graphs in two structural classes."""
    rng = np.random.default_rng(7)
    graphs, labels = [], []
    for i in range(16):
        p = 0.25 if i % 2 == 0 else 0.6
        g = ensure_connected(erdos_renyi(8, p, rng), rng)
        g = g.with_labels((np.arange(8) % 3).tolist())
        graphs.append(g)
        labels.append(i % 2)
    return GraphDataset(name="cvtoy", graphs=graphs, y=np.array(labels))
