"""Checkpoint format: round-trips, atomicity, corruption rollback, prune."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience import checkpoint as checkpoint_mod
from repro.resilience import faults

pytestmark = pytest.mark.faults


def _state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "epoch": 4,
        "network": {"params": [rng.normal(size=(3, 2)), rng.normal(size=2)]},
        "optimizer": {"kind": "RMSprop", "lr": 0.01, "slots": {"t": 7}},
        "rng": {"state": rng.integers(0, 2**32, size=4), "pos": 11},
        "flags": [True, None, "text", 2.5],
    }


def _tree_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and set(a) == set(b)
            and all(_tree_equal(a[k], b[k]) for k in a)
        )
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            _tree_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


class TestSingleFile:
    def test_round_trip_is_bitwise(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, 4, _state())
        step, loaded = load_checkpoint(path)
        assert step == 4
        # Tuples come back as lists (JSON skeleton) — the values match.
        assert _tree_equal(loaded, json_roundtrip_free(_state()))

    def test_unencodable_state_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_checkpoint(tmp_path / "x.npz", 0, {"bad": object()})

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_truncated_file_is_checkpoint_error(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, 0, _state())
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_flipped_array_byte_fails_checksum(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, 0, {"w": np.zeros(64)})
        # Rebuild the npz with one tampered array but the old manifest.
        with np.load(path, allow_pickle=False) as npz:
            payload = {n: npz[n] for n in npz.files}
        tampered = [n for n in payload if n != "__manifest__"][0]
        payload[tampered] = payload[tampered] + 1.0
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_foreign_format_version_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "ckpt.npz"
        monkeypatch.setattr(checkpoint_mod, "FORMAT_VERSION", 99)
        save_checkpoint(path, 0, _state())
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_interrupted_write_leaves_no_partial_file(self, tmp_path):
        """raise@checkpoint_write dies before the atomic rename."""
        faults.install("raise@checkpoint_write:0")
        path = tmp_path / "ckpt.npz"
        with pytest.raises(faults.InjectedFault):
            save_checkpoint(path, 0, _state())
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up too


def json_roundtrip_free(state):
    """The expected load() shape: tuples become lists, arrays survive."""
    if isinstance(state, np.ndarray):
        return state
    if isinstance(state, dict):
        return {k: json_roundtrip_free(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [json_roundtrip_free(v) for v in state]
    return state


class TestManager:
    def test_save_list_load_latest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=None)
        for step in range(3):
            mgr.save(step, {"w": np.full(4, float(step))})
        assert [i.step for i in mgr.list()] == [0, 1, 2]
        step, state = mgr.load_latest()
        assert step == 2 and state["w"][0] == 2.0

    def test_load_latest_empty_dir(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_rollback_skips_and_deletes_corrupt_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=None)
        mgr.save(0, {"w": np.zeros(4)})
        newest = mgr.save(1, {"w": np.ones(4)})
        newest.write_bytes(b"not a checkpoint")
        step, state = mgr.load_latest()
        assert step == 0 and not newest.exists()

    def test_corrupt_fault_forces_rollback(self, tmp_path):
        """corrupt@checkpoint_write tears the newest file post-rename."""
        mgr = CheckpointManager(tmp_path, keep=None)
        mgr.save(0, {"w": np.zeros(32)})
        faults.install("corrupt@checkpoint_write:1")
        mgr.save(1, {"w": np.ones(32)})
        step, _ = mgr.load_latest()
        assert step == 0  # torn step-1 file detected, rolled back

    def test_prune_keeps_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=None)
        for step in range(5):
            mgr.save(step, {"w": np.zeros(2)})
        assert mgr.prune(2) == 3
        assert [i.step for i in mgr.list()] == [3, 4]

    def test_keep_is_enforced_on_save(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in range(4):
            mgr.save(step, {"w": np.zeros(2)})
        assert [i.step for i in mgr.list()] == [2, 3]

    def test_prune_removes_stale_temp_files(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=None)
        mgr.save(0, {"w": np.zeros(2)})
        stale = tmp_path / ".tmp-ckpt-dead.npz"
        stale.write_bytes(b"partial")
        mgr.prune(1)
        assert not stale.exists()

    def test_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestManifest:
    def test_manifest_is_inspectable_json(self, tmp_path):
        """The manifest entry is plain JSON — debuggable without us."""
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, 3, {"w": np.zeros(2)})
        with np.load(path, allow_pickle=False) as npz:
            manifest = json.loads(bytes(npz["__manifest__"]).decode())
        assert manifest["format_version"] == checkpoint_mod.FORMAT_VERSION
        assert manifest["step"] == 3
        assert "checksum" in manifest
