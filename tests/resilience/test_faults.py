"""The fault-injection DSL: parsing, fire accounting, modes."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilience import faults

pytestmark = pytest.mark.faults

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestParsing:
    def test_single_clause(self):
        plan = faults.parse_plan("raise@epoch:3")
        (spec,) = plan.specs
        assert (spec.mode, spec.point, spec.match, spec.fires) == (
            "raise",
            "epoch",
            3,
            1,
        )

    def test_multi_clause_with_fires(self):
        plan = faults.parse_plan("kill@fold:2x3, corrupt@cache_write:0")
        assert [s.spec_id for s in plan.specs] == [
            "kill@fold:2x3",
            "corrupt@cache_write:0x1",
        ]
        assert set(plan.by_point) == {"fold", "cache_write"}

    def test_empty_clauses_ignored(self):
        assert faults.parse_plan(" , raise@epoch:0 , ").specs != []

    @pytest.mark.parametrize(
        "text",
        ["explode@epoch:1", "raise@epoch", "raise@epoch:x2", "raise@epoch:1x0"],
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            faults.parse_plan(text)


class TestFiring:
    def test_no_plan_is_noop(self):
        assert faults.check("epoch", 0) is None

    def test_nonmatching_point_and_index(self):
        faults.install("raise@epoch:3")
        assert faults.check("fold", 3) is None
        assert faults.check("epoch", 2) is None

    def test_raise_mode_raises_injected_fault(self):
        faults.install("raise@epoch:1")
        with pytest.raises(faults.InjectedFault):
            faults.check("epoch", 1)

    def test_one_shot_by_default(self):
        """A spent fault is dormant, so resumed runs do not die twice."""
        faults.install("raise@epoch:1")
        with pytest.raises(faults.InjectedFault):
            faults.check("epoch", 1)
        assert faults.check("epoch", 1) is None

    def test_fires_count_honoured(self):
        faults.install("raise@fold:0x2")
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.check("fold", 0)
        assert faults.check("fold", 0) is None

    def test_corrupt_mode_returns_action(self):
        faults.install("corrupt@cache_write:1")
        assert faults.check("cache_write", 0) is None
        assert faults.check("cache_write", 1) == "corrupt"
        assert faults.check("cache_write", 1) is None  # spent

    def test_injected_fault_evades_except_exception(self):
        """The whole point of BaseException: recovery code can't eat it."""
        faults.install("raise@epoch:0")
        with pytest.raises(faults.InjectedFault):
            try:
                faults.check("epoch", 0)
            except Exception:  # noqa: BLE001 - deliberately broad
                pytest.fail("InjectedFault must not be caught by except Exception")


class TestStateDir:
    def test_fire_counts_shared_via_marker_files(self, tmp_path):
        """Two plan objects (= two processes) share spent accounting."""
        first = faults.parse_plan("raise@fold:1x2", state_dir=tmp_path)
        with pytest.raises(faults.InjectedFault):
            first.trigger("fold", 1)
        second = faults.parse_plan("raise@fold:1x2", state_dir=tmp_path)
        assert second.fired(second.specs[0]) == 1
        with pytest.raises(faults.InjectedFault):
            second.trigger("fold", 1)
        assert first.trigger("fold", 1) is None  # 2 fires spent everywhere

    def test_env_install(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise@epoch:5")
        monkeypatch.setenv(faults.FAULTS_STATE_ENV, str(tmp_path))
        faults.clear()
        plan = faults.active_plan()  # lazily loads the environment
        assert plan is not None and plan.state_dir == tmp_path
        with pytest.raises(faults.InjectedFault):
            faults.check("epoch", 5)
        assert (tmp_path / "raise@epoch:5x1.fired").stat().st_size == 1

    def test_explicit_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise@epoch:0")
        faults.install("raise@epoch:9")
        assert faults.check("epoch", 0) is None
        with pytest.raises(faults.InjectedFault):
            faults.check("epoch", 9)


class TestKillMode:
    def test_kill_exits_with_known_code(self):
        """``kill`` must die abruptly — run it in a scratch process."""
        code = (
            "from repro.resilience import faults\n"
            "faults.install('kill@fold:0')\n"
            "faults.check('fold', 0)\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode == faults.KILL_EXIT_CODE
        assert "survived" not in proc.stdout
