"""Fold claims: atomic mutual exclusion, heartbeats, stale-claim stealing.

The exactly-once prerequisite for distributed CV: two concurrent
coordinators (or a coordinator and a straggler) must never both run the
same fold.  The race tests use real separate processes synchronized on a
barrier, so the atomic link-publish acquire is exercised under genuine
concurrency.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.parallel import fork_available
from repro.resilience.journal import FoldClaims, FoldJournal

pytestmark = pytest.mark.dist

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# Single-process semantics
# ----------------------------------------------------------------------

def test_claim_release_cycle(tmp_path):
    claims = FoldClaims(tmp_path / "claims", owner="a")
    assert claims.claim(3) is True
    holder = claims.holder(3)
    assert holder["owner"] == "a"
    assert holder["pid"] == os.getpid()
    claims.release(3)
    assert claims.holder(3) is None
    assert claims.claim(3) is True  # reacquirable after release


def test_second_owner_is_refused_while_heartbeat_is_live(tmp_path):
    a = FoldClaims(tmp_path / "claims", owner="a", ttl_s=60.0)
    b = FoldClaims(tmp_path / "claims", owner="b", ttl_s=60.0)
    assert a.claim(0) is True
    assert b.claim(0) is False
    assert b.holder(0)["owner"] == "a"


def test_refresh_keeps_a_claim_alive(tmp_path):
    a = FoldClaims(tmp_path / "claims", owner="a", ttl_s=0.3)
    b = FoldClaims(tmp_path / "claims", owner="b", ttl_s=0.3)
    assert a.claim(0) is True
    for _ in range(3):
        time.sleep(0.15)
        a.refresh(0)
        assert b.claim(0) is False  # heartbeat stays fresh, no steal
    assert a.holder(0)["owner"] == "a"


def test_stale_claim_is_stolen(tmp_path):
    a = FoldClaims(tmp_path / "claims", owner="a", ttl_s=0.1)
    b = FoldClaims(tmp_path / "claims", owner="b", ttl_s=0.1)
    assert a.claim(0) is True
    time.sleep(0.25)  # let a's heartbeat go stale (a "died")
    assert b.claim(0) is True
    assert b.holder(0)["owner"] == "b"


def test_torn_claim_body_reads_as_stale(tmp_path):
    claims = FoldClaims(tmp_path / "claims", owner="b", ttl_s=60.0)
    path = tmp_path / "claims" / "fold-0000.claim"
    path.parent.mkdir(parents=True)
    path.write_bytes(b'{"owner": "a", "pi')  # torn mid-write
    assert claims.holder(0) == {"owner": None, "pid": None, "ts": None}
    assert claims.claim(0) is True  # unreadable = unheartbeatable = stealable


def test_release_is_idempotent(tmp_path):
    claims = FoldClaims(tmp_path / "claims", owner="a")
    claims.release(7)  # never claimed: no error
    assert claims.claim(7) is True
    claims.release(7)
    claims.release(7)


def test_journal_claims_share_the_run_directory(tmp_path):
    journal = FoldJournal(tmp_path / "runkey" / "folds.jsonl")
    claims = journal.claims(owner="coord")
    assert claims.claim(0) is True
    assert (tmp_path / "runkey" / "claims" / "fold-0000.claim").exists()


def test_invalid_ttl_is_rejected(tmp_path):
    with pytest.raises(ValueError):
        FoldClaims(tmp_path, owner="a", ttl_s=0.0)


# ----------------------------------------------------------------------
# Multi-process races
# ----------------------------------------------------------------------

def _race_acquire(directory, owner, barrier, fold, queue):
    claims = FoldClaims(directory, owner=owner, ttl_s=60.0)
    barrier.wait()  # all contenders hit O_CREAT|O_EXCL together
    queue.put((owner, claims.claim(fold)))


@needs_fork
@pytest.mark.slow
def test_exactly_one_process_wins_the_claim(tmp_path):
    """N processes race the same fold; exactly one acquire succeeds."""
    ctx = multiprocessing.get_context("fork")
    contenders = 4
    for fold in range(5):  # repeat: a race that passes once proves little
        barrier = ctx.Barrier(contenders)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_acquire,
                args=(tmp_path / "claims", f"owner-{i}", barrier, fold, queue),
            )
            for i in range(contenders)
        ]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        winners = [owner for owner, won in outcomes if won]
        assert len(winners) == 1, outcomes
        # The file on disk names exactly the winning owner.
        body = json.loads(
            (tmp_path / "claims" / f"fold-{fold:04d}.claim").read_text()
        )
        assert body["owner"] == winners[0]


def _race_steal(directory, owner, barrier, queue):
    claims = FoldClaims(directory, owner=owner, ttl_s=0.05)
    barrier.wait()
    queue.put((owner, claims.claim(0)))


@needs_fork
@pytest.mark.slow
def test_exactly_one_process_wins_a_steal(tmp_path):
    """Contenders racing to evict the same stale claim get one winner."""
    ctx = multiprocessing.get_context("fork")
    stale = FoldClaims(tmp_path / "claims", owner="dead", ttl_s=0.05)
    assert stale.claim(0) is True
    time.sleep(0.15)  # the "dead" owner stops heartbeating
    contenders = 4
    barrier = ctx.Barrier(contenders)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_race_steal,
            args=(tmp_path / "claims", f"thief-{i}", barrier, queue),
        )
        for i in range(contenders)
    ]
    for p in procs:
        p.start()
    outcomes = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    winners = [owner for owner, won in outcomes if won]
    assert len(winners) == 1, outcomes
    assert json.loads(
        (tmp_path / "claims" / "fold-0000.claim").read_text()
    )["owner"] == winners[0]
