"""The fault matrix: every injection point, interrupted run resumes bitwise.

Covers the four instrumented points — ``fold`` (serial and in pool
workers), ``cache_write``, ``checkpoint_write`` (exercised in
test_checkpoint.py / test_trainer_resume.py), and ``epoch`` (exercised
in test_trainer_resume.py) — plus the end-to-end subprocess kill where
the whole interpreter dies mid-protocol and a rerun completes the CV.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import WeisfeilerLehmanKernel
from repro.parallel import parallelism_available
from repro.resilience import FoldJournal, faults

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _kernel_cv(cv_dataset, **kwargs):
    return evaluate_kernel_svm(
        WeisfeilerLehmanKernel(2), cv_dataset, n_splits=4, seed=0, **kwargs
    )


class _ToyModel:
    """Deterministic stand-in estimator: seed-derived validation curve."""

    def __init__(self, fold: int) -> None:
        self.fold = fold

    def fit(self, graphs, y, validation=None):
        rng = np.random.default_rng(100 + self.fold)
        self.history_ = SimpleNamespace(
            val_accuracy=list(rng.random(5) * 0.5 + 0.25)
        )
        return self


def _neural_cv(cv_dataset, **kwargs):
    return evaluate_neural_model(
        _ToyModel, cv_dataset, n_splits=4, seed=0, name="toy", **kwargs
    )


class TestKernelJournalResume:
    def test_crash_midway_then_resume_is_bitwise(self, tmp_path, cv_dataset):
        baseline = _kernel_cv(cv_dataset)
        faults.install("raise@fold:2")
        with pytest.raises(faults.InjectedFault):
            _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        faults.clear()
        # Folds 0 and 1 are journaled; the rerun recomputes only 2 and 3.
        journaled = sorted(_find_journal(tmp_path).load())
        assert journaled == [0, 1]
        resumed = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        assert resumed.fold_accuracies == baseline.fold_accuracies
        assert resumed.extra["selected_c"] == baseline.extra["selected_c"]

    def test_completed_run_skips_every_fold(self, tmp_path, cv_dataset):
        first = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        # Poison the fold function: any recomputation would now explode.
        faults.install("raise@fold:0x99,raise@fold:1x99,raise@fold:2x99,raise@fold:3x99")
        again = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        assert again.fold_accuracies == first.fold_accuracies

    def test_no_resume_discards_journal(self, tmp_path, cv_dataset):
        first = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        journal = _find_journal(tmp_path)
        journal.record(0, {"accuracy": -1.0, "selected_c": 1, "seconds": 0.0})
        # resume=True replays the (poisoned) journal entry verbatim...
        replayed = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        assert replayed.fold_accuracies[0] == -1.0
        # ...while resume=False wipes it and recomputes from scratch.
        fresh = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path, resume=False)
        assert fresh.fold_accuracies == first.fold_accuracies

    def test_config_change_never_reuses_journal(self, tmp_path, cv_dataset):
        _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        other = evaluate_kernel_svm(
            WeisfeilerLehmanKernel(1),  # different kernel -> different run key
            cv_dataset,
            n_splits=4,
            seed=0,
            checkpoint_dir=tmp_path,
        )
        run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(run_dirs) == 2
        assert other.fold_accuracies  # computed, not replayed

    def test_torn_journal_line_is_skipped(self, tmp_path, cv_dataset):
        baseline = _kernel_cv(cv_dataset)
        _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        journal = _find_journal(tmp_path)
        with open(journal.path, "a") as fh:
            fh.write('{"fold": 3, "result": {"accuracy"')  # torn write
        resumed = _kernel_cv(cv_dataset, checkpoint_dir=tmp_path)
        assert resumed.fold_accuracies == baseline.fold_accuracies


class TestNeuralJournalResume:
    def test_crash_midway_then_resume_is_bitwise(self, tmp_path, cv_dataset):
        baseline = _neural_cv(cv_dataset)
        faults.install("raise@fold:1")
        with pytest.raises(faults.InjectedFault):
            _neural_cv(cv_dataset, checkpoint_dir=tmp_path)
        faults.clear()
        resumed = _neural_cv(cv_dataset, checkpoint_dir=tmp_path)
        assert resumed.fold_accuracies == baseline.fold_accuracies
        assert resumed.best_epoch == baseline.best_epoch
        assert resumed.extra["mean_curve"] == baseline.extra["mean_curve"]


@needs_fork
class TestParallelCrashRecovery:
    def test_worker_kill_retries_then_matches_serial(self, tmp_path, cv_dataset):
        """kill@fold once: the pool breaks, the requeue succeeds."""
        baseline = _kernel_cv(cv_dataset)
        state = tmp_path / "fault-state"
        faults.install("kill@fold:2", state_dir=state)
        survived = _kernel_cv(cv_dataset, workers=2)
        assert survived.fold_accuracies == baseline.fold_accuracies

    def test_repeated_worker_kill_degrades_to_serial(self, tmp_path, cv_dataset):
        """kill@fold on every pool attempt: serial fallback completes."""
        baseline = _kernel_cv(cv_dataset)
        state = tmp_path / "fault-state"
        # 3 pool attempts (initial + max_retries=2) all die; the fires
        # budget is then spent, so the parent's serial pass survives.
        faults.install("kill@fold:1x3", state_dir=state)
        survived = _kernel_cv(cv_dataset, workers=2)
        assert survived.fold_accuracies == baseline.fold_accuracies

    def test_parallel_resume_composes_with_journal(self, tmp_path, cv_dataset):
        baseline = _kernel_cv(cv_dataset)
        state = tmp_path / "fault-state"
        faults.install("kill@fold:3", state_dir=state)
        resumed = _kernel_cv(
            cv_dataset, workers=2, checkpoint_dir=tmp_path / "journal"
        )
        assert resumed.fold_accuracies == baseline.fold_accuracies
        journaled = sorted(_find_journal(tmp_path / "journal").load())
        assert journaled == [0, 1, 2, 3]


class TestCacheWriteFaults:
    def test_injected_raise_is_not_swallowed(self, tmp_path):
        """put()'s best-effort except Exception must not eat the fault."""
        cache = cache_mod.FeatureMapCache(cache_dir=tmp_path)
        faults.install("raise@cache_write:0")
        with pytest.raises(faults.InjectedFault):
            cache.put("k" * 32, {"x": np.arange(3)}, namespace="t")

    def test_corrupt_write_is_a_miss_on_read(self, tmp_path):
        cache = cache_mod.FeatureMapCache(cache_dir=tmp_path)
        faults.install("corrupt@cache_write:0")
        key = "k" * 32
        cache.put(key, {"x": np.arange(8)}, namespace="t")
        fresh = cache_mod.FeatureMapCache(cache_dir=tmp_path)  # no memory tier hit
        assert fresh.get(key, namespace="t") is None
        assert fresh.stats.errors == 1  # detected, dropped, recomputable

    def test_interrupted_write_leaves_no_file(self, tmp_path):
        cache = cache_mod.FeatureMapCache(cache_dir=tmp_path)
        faults.install("raise@cache_write:0")
        key = "k" * 32
        with pytest.raises(faults.InjectedFault):
            cache.put(key, {"x": np.arange(3)}, namespace="t")
        fresh = cache_mod.FeatureMapCache(cache_dir=tmp_path)
        assert fresh.disk_usage()[0] == 0


@pytest.mark.slow
class TestSubprocessKill:
    """The whole interpreter dies mid-CV; a rerun finishes the job."""

    def _run_cli(self, checkpoint_dir, env_extra=None):
        env = {**os.environ, "PYTHONPATH": SRC}
        env.pop(faults.FAULTS_ENV, None)
        env.pop(faults.FAULTS_STATE_ENV, None)
        env.update(env_extra or {})
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "train",
                "--dataset",
                "MUTAG",
                "--model",
                "wl-svm",
                "--scale",
                "0.05",
                "--folds",
                "3",
                "--checkpoint-dir",
                str(checkpoint_dir),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_kill_mid_protocol_then_rerun_matches_clean(self, tmp_path):
        clean = self._run_cli(tmp_path / "clean")
        assert clean.returncode == 0, clean.stderr
        killed = self._run_cli(
            tmp_path / "crashed",
            env_extra={
                faults.FAULTS_ENV: "kill@fold:1",
                faults.FAULTS_STATE_ENV: str(tmp_path / "state"),
            },
        )
        assert killed.returncode == faults.KILL_EXIT_CODE
        journaled = sorted(_find_journal(tmp_path / "crashed").load())
        assert journaled == [0]  # fold 0 survived the crash
        resumed = self._run_cli(tmp_path / "crashed")
        assert resumed.returncode == 0, resumed.stderr
        accuracy = [l for l in clean.stdout.splitlines() if "accuracy" in l]
        resumed_accuracy = [
            l for l in resumed.stdout.splitlines() if "accuracy" in l
        ]
        assert accuracy == resumed_accuracy != []


def _find_journal(checkpoint_dir) -> FoldJournal:
    paths = list(Path(checkpoint_dir).glob("*/folds.jsonl"))
    assert len(paths) == 1, f"expected one journal, found {paths}"
    return FoldJournal(paths[0])
