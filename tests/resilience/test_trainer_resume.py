"""Interrupt-at-any-epoch + resume == uninterrupted run, bitwise."""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    BatchNorm,
    CheckpointCallback,
    Dense,
    Dropout,
    EarlyStopping,
    ReLU,
    Sequential,
    Trainer,
)
from repro.resilience import CheckpointManager, faults

pytestmark = pytest.mark.faults

EPOCHS = 6


def _make_data(n=24, features=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, features))
    y = rng.integers(0, classes, size=n)
    return x, y


def _make_net():
    # Every stateful layer kind in one stack: weights (Dense), buffers
    # (BatchNorm running stats), and an RNG stream (Dropout).
    return Sequential(
        [
            Dense(6, 8, rng=1),
            BatchNorm(8),
            ReLU(),
            Dropout(0.3, rng=2),
            Dense(8, 3, rng=3),
        ]
    )


def _train(
    epochs=EPOCHS,
    *,
    checkpoint=None,
    resume_from=None,
    early_stopping=None,
    optimizer_factory=None,
):
    net = _make_net()
    trainer = Trainer(
        optimizer_factory=optimizer_factory,
        batch_size=8,
        epochs=epochs,
        seed=5,
        early_stopping=early_stopping,
    )
    x, y = _make_data()
    history = trainer.fit(
        net, x, y, validation=(x, y), checkpoint=checkpoint, resume_from=resume_from
    )
    return net, history


def _weights(net):
    return [p.value.copy() for p in net.parameters()]


def _assert_bitwise_equal(run_a, run_b):
    net_a, hist_a = run_a
    net_b, hist_b = run_b
    for wa, wb in zip(_weights(net_a), _weights(net_b)):
        assert np.array_equal(wa, wb)
    assert hist_a.state_dict() == hist_b.state_dict()
    # Buffers too: BatchNorm running statistics must match exactly.
    bn_a = net_a.layers[1]
    bn_b = net_b.layers[1]
    assert np.array_equal(bn_a.running_mean, bn_b.running_mean)
    assert np.array_equal(bn_a.running_var, bn_b.running_var)


def _interrupt_and_resume(tmp_dir, interrupt_epoch, **train_kwargs):
    """Train with a fault at ``interrupt_epoch``, then resume to the end."""
    manager = CheckpointManager(tmp_dir, keep=None)
    faults.install(f"raise@epoch:{interrupt_epoch}")
    with pytest.raises(faults.InjectedFault):
        _train(checkpoint=manager, **train_kwargs)
    faults.clear()
    return _train(resume_from=manager, **train_kwargs)


class TestBitwiseResume:
    @pytest.mark.parametrize("interrupt_epoch", [0, 2, 4])
    def test_resume_matches_uninterrupted(self, tmp_path, interrupt_epoch):
        baseline = _train()
        resumed = _interrupt_and_resume(tmp_path, interrupt_epoch)
        _assert_bitwise_equal(baseline, resumed)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda params: SGD(params, lr=0.05, momentum=0.9),
            lambda params: Adam(params, lr=0.01),
        ],
        ids=["sgd-momentum", "adam"],
    )
    def test_optimizer_slots_survive_resume(self, tmp_path, factory):
        baseline = _train(optimizer_factory=factory)
        resumed = _interrupt_and_resume(tmp_path, 2, optimizer_factory=factory)
        _assert_bitwise_equal(baseline, resumed)

    def test_early_stopping_counters_survive_resume(self, tmp_path):
        # A huge min_delta means nothing ever "improves": training stops
        # after exactly `patience` non-improving epochs past the first.
        make_es = lambda: EarlyStopping(patience=2, min_delta=10.0)  # noqa: E731
        baseline = _train(early_stopping=make_es())
        resumed = _interrupt_and_resume(tmp_path, 1, early_stopping=make_es())
        _assert_bitwise_equal(baseline, resumed)
        assert len(resumed[1].loss) == len(baseline[1].loss) < EPOCHS

    @pytest.mark.slow
    @settings(max_examples=8, deadline=None)
    @given(interrupt_epoch=st.integers(min_value=0, max_value=EPOCHS - 2))
    def test_any_prefix_interrupt_resumes_bitwise(self, interrupt_epoch):
        """Property: every interrupt point yields a bitwise-equal resume."""
        baseline = _train()
        with tempfile.TemporaryDirectory() as tmp_dir:
            try:
                resumed = _interrupt_and_resume(tmp_dir, interrupt_epoch)
            finally:
                faults.clear()
        _assert_bitwise_equal(baseline, resumed)


class TestResumeSources:
    def test_resume_from_directory_path(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=None)
        faults.install("raise@epoch:2")
        with pytest.raises(faults.InjectedFault):
            _train(checkpoint=manager)
        faults.clear()
        resumed = _train(resume_from=str(tmp_path))
        _assert_bitwise_equal(_train(), resumed)

    def test_resume_from_single_file(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=None)
        _train(epochs=3, checkpoint=manager)
        newest = manager.list()[-1]
        net = _make_net()
        x, y = _make_data()
        trainer = Trainer(batch_size=8, epochs=EPOCHS, seed=5)
        history = trainer.fit(
            net, x, y, validation=(x, y), resume_from=newest.path
        )
        assert len(history.loss) == EPOCHS

    def test_resume_from_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            _train(resume_from=tmp_path)


class TestCheckpointCallback:
    def test_every_n_epochs(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=None)
        _train(checkpoint=CheckpointCallback(manager, every=2))
        assert [i.step for i in manager.list()] == [1, 3, 5]

    def test_bare_manager_accepted(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=None)
        _train(checkpoint=manager)
        assert [i.step for i in manager.list()] == list(range(EPOCHS))

    def test_retention_limit_applies(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        _train(checkpoint=manager)
        assert [i.step for i in manager.list()] == [EPOCHS - 2, EPOCHS - 1]

    def test_manager_without_save_rejected(self):
        with pytest.raises(TypeError):
            CheckpointCallback(object())
