"""Fixtures for the inference-serving tests.

Training even a tiny DeepMap model dominates test wall time, so the
fitted model, its saved artifact, and a live server are session-scoped;
individual tests spin up their own server only when they need special
tuning (tiny queues, slow fake models).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import deepmap_wl, save_model
from repro.graph import ensure_connected, erdos_renyi
from repro.serve import ModelRegistry, ReproServer, ServeConfig


def make_training_set(n: int = 12, size: int = 8, seed: int = 42):
    """Small two-class dataset (sparse vs dense random graphs)."""
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        g = erdos_renyi(size, 0.25 if i % 2 == 0 else 0.6, rng)
        g = ensure_connected(g, rng)
        graphs.append(g.with_labels((np.arange(size) % 3).tolist()))
        labels.append(i % 2)
    return graphs, np.array(labels)


@pytest.fixture(scope="session")
def train_data():
    return make_training_set()


@pytest.fixture(scope="session")
def serve_model(train_data):
    graphs, y = train_data
    return deepmap_wl(h=1, r=3, epochs=3, seed=0).fit(graphs, y)


@pytest.fixture(scope="session")
def model_path(serve_model, tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "deepmap-wl.pkl"
    save_model(serve_model, path)
    return path


@pytest.fixture(scope="session")
def live_server(model_path):
    """One shared server on an ephemeral port, default batching config."""
    registry = ModelRegistry()
    registry.load(model_path)
    server = ReproServer(
        registry, ServeConfig(port=0, max_batch=16, max_wait_ms=5.0, max_queue=64)
    )
    server.start()
    yield server
    server.stop()
