"""Autoscaler decision logic: scale up under pressure, down after
cooldown, and never flap.

The :class:`~repro.serve.batcher.Autoscaler` is a pure tick machine
over injected callables, so every scenario here is driven
deterministically — a fake clock, fake gauges, zero threads — and the
no-flap invariant is checked as a hard bound on scaling events per
simulated second, not as a timing-dependent observation.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve.batcher import Autoscaler, MicroBatcher


class _Sim:
    """A fake world: mutable depth/p95 gauges, worker count, clock."""

    def __init__(self, workers=1, depth=0, p95=0.0):
        self.workers = workers
        self.depth = depth
        self.p95 = p95
        self.now = 0.0
        self.events = []  # (time, new_workers)

    def scale(self, n):
        self.events.append((self.now, n))
        self.workers = n

    def scaler(self, **kwargs):
        kwargs.setdefault("min_workers", 1)
        kwargs.setdefault("max_workers", 4)
        kwargs.setdefault("up_queue_depth", 8)
        kwargs.setdefault("up_ticks", 2)
        kwargs.setdefault("down_ticks", 3)
        kwargs.setdefault("cooldown_s", 5.0)
        return Autoscaler(
            depth_fn=lambda: self.depth,
            workers_fn=lambda: self.workers,
            scale_fn=self.scale,
            p95_fn=lambda: self.p95,
            now_fn=lambda: self.now,
            **kwargs,
        )


class TestScaleUp:
    def test_scales_up_under_sustained_queue_pressure(self):
        sim = _Sim(depth=20)
        scaler = sim.scaler()
        assert scaler.tick() == 0  # one pressured tick is not enough
        assert scaler.tick() == 1
        assert sim.workers == 2

    def test_scales_up_on_p95_latency(self):
        sim = _Sim(depth=0, p95=900.0)
        scaler = sim.scaler(up_p95_ms=500.0)
        scaler.tick()
        assert scaler.tick() == 1
        assert sim.workers == 2

    def test_caps_at_max_workers(self):
        sim = _Sim(workers=4, depth=50)
        scaler = sim.scaler()
        for _ in range(10):
            sim.now += 10.0
            scaler.tick()
        assert sim.workers == 4 and sim.events == []

    def test_single_spike_does_not_scale(self):
        sim = _Sim(depth=20)
        scaler = sim.scaler(up_ticks=3)
        scaler.tick()
        sim.depth = 0  # spike over; streak must reset
        scaler.tick()
        sim.depth = 20
        scaler.tick()
        scaler.tick()
        assert sim.workers == 1 and sim.events == []


class TestScaleDown:
    def test_scales_down_after_idle_streak(self):
        sim = _Sim(workers=3, depth=0)
        scaler = sim.scaler(down_ticks=3)
        deltas = [scaler.tick() for _ in range(3)]
        assert deltas == [0, 0, -1]
        assert sim.workers == 2

    def test_respects_min_workers(self):
        sim = _Sim(workers=1, depth=0)
        scaler = sim.scaler()
        for _ in range(20):
            sim.now += 10.0
            scaler.tick()
        assert sim.workers == 1 and sim.events == []

    def test_cooldown_blocks_consecutive_downs(self):
        sim = _Sim(workers=4, depth=0)
        scaler = sim.scaler(down_ticks=2, cooldown_s=5.0)
        scaler.tick()
        assert scaler.tick() == -1
        # Still idle, but inside the cooldown window: no second step.
        assert scaler.tick() == 0
        assert scaler.tick() == 0
        assert sim.workers == 3
        sim.now = 10.0  # cooldown expired; streak kept counting
        assert scaler.tick() == -1
        assert sim.workers == 2


class TestNoFlap:
    def test_oscillating_load_never_flaps(self):
        """Load flips pressured/idle every tick: worker count must not move.

        Oscillation resets both streaks before either reaches its
        threshold, so the count stays put no matter how long it runs.
        """
        sim = _Sim(workers=2, depth=0)
        scaler = sim.scaler(up_ticks=2, down_ticks=2, cooldown_s=1.0)
        for i in range(200):
            sim.now += 0.5
            sim.depth = 20 if i % 2 == 0 else 0
            scaler.tick()
        assert sim.events == []

    def test_scaling_rate_bounded_by_cooldown(self):
        """Even adversarial load can't produce steps faster than cooldown."""
        rng = np.random.default_rng(0)
        sim = _Sim(workers=2)
        scaler = sim.scaler(up_ticks=1, down_ticks=1, cooldown_s=5.0)
        for _ in range(1000):
            sim.now += 0.1
            sim.depth = int(rng.integers(0, 30))
            scaler.tick()
        for (t1, _), (t2, _) in zip(sim.events, sim.events[1:]):
            assert t2 - t1 >= 5.0, f"flap: steps at {t1} and {t2}"

    def test_mid_range_load_holds_steady(self):
        sim = _Sim(workers=2, depth=4)  # above down (0), below up (8)
        scaler = sim.scaler()
        for _ in range(50):
            sim.now += 1.0
            scaler.tick()
        assert sim.events == []


class TestValidation:
    def test_rejects_bad_bounds(self):
        sim = _Sim()
        with pytest.raises(ValueError):
            sim.scaler(min_workers=0)
        with pytest.raises(ValueError):
            sim.scaler(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            sim.scaler(up_ticks=0)


class TestAgainstRealBatcher:
    """End-to-end: the autoscaler resizes a live MicroBatcher."""

    def test_scale_up_under_real_queue_pressure_and_down_when_idle(self):
        release = threading.Event()

        def slow_infer(graphs):
            release.wait(2.0)
            return np.zeros((len(graphs), 2)), {}

        batcher = MicroBatcher(
            slow_infer, max_batch=1, max_wait_ms=0.0, max_queue=64, workers=1
        ).start()
        scaler = Autoscaler(
            min_workers=1,
            max_workers=3,
            depth_fn=batcher.depth,
            workers_fn=lambda: batcher.workers,
            scale_fn=batcher.resize,
            up_queue_depth=4,
            up_ticks=2,
            down_ticks=2,
            cooldown_s=0.0,
        )
        threads = [
            threading.Thread(target=lambda: batcher.submit([object()]), daemon=True)
            for _ in range(8)
        ]
        try:
            for t in threads:
                t.start()
            deadline = time.monotonic() + 2.0
            while batcher.depth() < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            scaler.tick()
            scaler.tick()
            deadline = time.monotonic() + 2.0
            while batcher.workers < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert batcher.workers >= 2, "did not scale up under pressure"
        finally:
            release.set()
            for t in threads:
                t.join(timeout=5.0)
        # Queue empty now: two idle ticks scale back down.
        scaler.tick()
        scaler.tick()
        deadline = time.monotonic() + 2.0
        while batcher.workers > 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert batcher.workers == 1, "did not scale down when idle"
        batcher.stop()
