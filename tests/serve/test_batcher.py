"""MicroBatcher tests: fusing, flushing, shedding, deadlines, correctness.

The crown jewel is the batch-composition-invariance property: a fused
forward pass over concurrently submitted requests must be *bitwise*
identical to running every request alone.  The inference ``Dense`` path
fixes its GEMM summation order per row precisely so this holds.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.serve import (
    BatcherStopped,
    DeadlineExceeded,
    MicroBatcher,
    RequestShed,
)
from tests.conftest import random_graphs

pytestmark = pytest.mark.serve


@pytest.fixture
def metrics():
    """Obs enabled for the test (left alone if a live server owns it)."""
    was_enabled = obs.enabled()
    if not was_enabled:
        obs.enable()
    yield obs.get_metrics()
    if not was_enabled:
        obs.disable()


class RecordingInfer:
    """Fake model: echoes items as a column vector, records batch sizes."""

    def __init__(self) -> None:
        self.batch_sizes: list[int] = []
        self.lock = threading.Lock()

    def __call__(self, items):
        with self.lock:
            self.batch_sizes.append(len(items))
        return np.asarray(items, dtype=float).reshape(-1, 1), {"model": "echo"}


class BlockingInfer(RecordingInfer):
    """Echo infer that parks on an event so tests can pile up a queue."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, items):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test never released the batcher"
        return super().__call__(items)


def submit_concurrently(batcher, payloads, timeout_s=None):
    """Submit each payload from its own thread; return results/errors in order."""
    results = [None] * len(payloads)
    errors = [None] * len(payloads)
    barrier = threading.Barrier(len(payloads))

    def worker(i):
        barrier.wait()
        try:
            results[i] = batcher.submit(payloads[i], timeout_s=timeout_s)
        except Exception as exc:  # noqa: BLE001 - re-raised by callers
            errors[i] = exc

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(payloads))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15.0)
    return results, errors


class TestFusing:
    def test_single_request_roundtrip(self, metrics):
        infer = RecordingInfer()
        batcher = MicroBatcher(infer, max_wait_ms=0).start()
        try:
            proba, extra = batcher.submit([3.0, 4.0])
            np.testing.assert_array_equal(proba, [[3.0], [4.0]])
            assert extra == {"model": "echo"}
        finally:
            batcher.stop()

    def test_concurrent_requests_fuse_into_one_batch(self, metrics):
        infer = RecordingInfer()
        batcher = MicroBatcher(infer, max_batch=4, max_wait_ms=500).start()
        try:
            results, errors = submit_concurrently(batcher, [[1.0], [2.0], [3.0], [4.0]])
        finally:
            batcher.stop()
        assert errors == [None] * 4
        # Filling max_batch flushes well before the 500 ms window ends,
        # and each request gets exactly its own slice back.
        assert infer.batch_sizes == [4]
        for i, (proba, _) in enumerate(results):
            np.testing.assert_array_equal(proba, [[i + 1.0]])

    def test_max_wait_flushes_a_partial_batch(self, metrics):
        infer = RecordingInfer()
        batcher = MicroBatcher(infer, max_batch=100, max_wait_ms=40).start()
        try:
            start = time.monotonic()
            results, errors = submit_concurrently(batcher, [[1.0], [2.0]])
            elapsed = time.monotonic() - start
        finally:
            batcher.stop()
        assert errors == [None, None]
        assert sum(infer.batch_sizes) == 2
        assert elapsed < 5.0  # flushed by the wait timer, not max_batch

    def test_oversized_request_carries_over(self, metrics):
        infer = RecordingInfer()
        batcher = MicroBatcher(infer, max_batch=3, max_wait_ms=200).start()
        try:
            results, errors = submit_concurrently(batcher, [[1.0, 2.0], [3.0, 4.0]])
        finally:
            batcher.stop()
        assert errors == [None, None]
        # 2 + 2 graphs cannot share a max_batch=3 pass: the second request
        # is carried into its own batch rather than split or dropped.
        assert sorted(infer.batch_sizes) == [2, 2]
        answered = sorted(tuple(p[:, 0]) for p, _ in results)
        assert answered == [(1.0, 2.0), (3.0, 4.0)]

    def test_request_larger_than_max_batch_still_runs(self, metrics):
        infer = RecordingInfer()
        batcher = MicroBatcher(infer, max_batch=2, max_wait_ms=0).start()
        try:
            proba, _ = batcher.submit([1.0, 2.0, 3.0, 4.0, 5.0])
        finally:
            batcher.stop()
        np.testing.assert_array_equal(proba[:, 0], [1.0, 2.0, 3.0, 4.0, 5.0])
        assert infer.batch_sizes == [5]


class TestBackpressure:
    def test_full_queue_sheds(self, metrics):
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0, max_queue=2).start()
        shed_before = metrics.counter("serve_requests_shed_total").value
        holders = []
        try:
            # Occupy the worker, then fill the admission queue.
            t = threading.Thread(target=lambda: holders.append(batcher.submit([0.0])))
            t.start()
            assert infer.entered.wait(timeout=5.0)
            queued = [
                threading.Thread(target=lambda v=v: holders.append(batcher.submit([v])))
                for v in (1.0, 2.0)
            ]
            for q in queued:
                q.start()
            deadline = time.monotonic() + 5.0
            while batcher.depth() < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            with pytest.raises(RequestShed, match="admission queue full"):
                batcher.submit([9.0])
            assert metrics.counter("serve_requests_shed_total").value == shed_before + 1
            infer.release.set()
            t.join(timeout=5.0)
            for q in queued:
                q.join(timeout=5.0)
        finally:
            infer.release.set()
            batcher.stop()
        # Shedding refused the overflow request but lost nothing admitted.
        assert len(holders) == 3

    def test_deadline_expires_while_worker_is_busy(self, metrics):
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0).start()
        try:
            t = threading.Thread(target=lambda: batcher.submit([0.0]))
            t.start()
            assert infer.entered.wait(timeout=5.0)
            with pytest.raises(DeadlineExceeded):
                batcher.submit([1.0], timeout_s=0.05)
            infer.release.set()
            t.join(timeout=5.0)
        finally:
            infer.release.set()
            batcher.stop()

    def test_stop_answers_queued_requests(self, metrics):
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0).start()
        errors = []

        def queued():
            try:
                batcher.submit([1.0])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        t0 = threading.Thread(target=lambda: batcher.submit([0.0]))
        t0.start()
        assert infer.entered.wait(timeout=5.0)
        t1 = threading.Thread(target=queued)
        t1.start()
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        batcher.stop(timeout=0.1)  # worker still parked in infer
        infer.release.set()
        t0.join(timeout=5.0)
        t1.join(timeout=5.0)
        assert len(errors) == 1 and isinstance(errors[0], BatcherStopped)

    def test_submit_after_stop_raises(self):
        batcher = MicroBatcher(RecordingInfer()).start()
        batcher.stop()
        with pytest.raises(BatcherStopped):
            batcher.submit([1.0])

    def test_infer_errors_propagate_to_every_request(self, metrics):
        def broken(items):
            raise ValueError("boom")

        batcher = MicroBatcher(broken, max_batch=4, max_wait_ms=30).start()
        try:
            _, errors = submit_concurrently(batcher, [[1.0], [2.0]])
        finally:
            batcher.stop()
        assert all(isinstance(e, ValueError) and "boom" in str(e) for e in errors)

    def test_empty_submit_rejected(self):
        batcher = MicroBatcher(RecordingInfer()).start()
        try:
            with pytest.raises(ValueError, match="at least one graph"):
                batcher.submit([])
        finally:
            batcher.stop()

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch": 0}, {"max_wait_ms": -1}, {"max_queue": 0}]
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingInfer(), **kwargs)


class TestBitwiseInvariance:
    """Fused batches must equal per-request inference bit for bit."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(graph_lists=st.lists(random_graphs(), min_size=1, max_size=6))
    def test_model_batching_is_bitwise_invariant(self, serve_model, graph_lists):
        batched = serve_model.predict_proba(graph_lists)
        serial = np.concatenate(
            [serve_model.predict_proba([g]) for g in graph_lists]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_fused_batcher_pass_matches_serial_model(self, serve_model, train_data):
        graphs, _ = train_data

        def infer(batch):
            return serve_model.predict_proba(batch), {"model": "wl"}

        batcher = MicroBatcher(infer, max_batch=32, max_wait_ms=100).start()
        infer_sizes: list[int] = []
        real_infer = batcher.infer

        def counting(batch):
            infer_sizes.append(len(batch))
            return real_infer(batch)

        batcher.infer = counting
        try:
            results, errors = submit_concurrently(batcher, [[g] for g in graphs])
        finally:
            batcher.stop()
        assert errors == [None] * len(graphs)
        fused = np.concatenate([proba for proba, _ in results])
        serial = np.concatenate([serve_model.predict_proba([g]) for g in graphs])
        np.testing.assert_array_equal(fused, serial)
        # The whole point: concurrency became fusion, not serial passes.
        assert max(infer_sizes) > 1


class TestDrainOnStop:
    """Shutdown must drain: every admitted request gets exactly one
    terminal response, and unexpired requests get their *real* answer.

    Regression for the original single-worker batcher, whose ``stop``
    answered everything still queued with :class:`BatcherStopped` even
    when the requests' deadlines had not expired.
    """

    def test_unexpired_requests_are_answered_not_dropped(self, metrics):
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0).start()
        outcomes: list[tuple[int, str]] = []
        lock = threading.Lock()

        def req(i):
            try:
                result, _ = batcher.submit([float(i)])
                with lock:
                    outcomes.append((i, f"ok:{result[0, 0]:g}"))
            except Exception as exc:  # noqa: BLE001
                with lock:
                    outcomes.append((i, type(exc).__name__))

        threads = [threading.Thread(target=req, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        assert infer.entered.wait(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 7 and time.monotonic() < deadline:
            time.sleep(0.005)
        stopper = threading.Thread(target=lambda: batcher.stop(timeout=10.0))
        stopper.start()
        infer.release.set()
        stopper.join(timeout=15.0)
        for t in threads:
            t.join(timeout=5.0)
        # Exactly one terminal response per admitted request...
        assert sorted(i for i, _ in outcomes) == list(range(8))
        # ...and every one of them is the real answer (echo of its input).
        assert {o for i, o in outcomes} == {f"ok:{i}" for i in range(8)}
        # No request ran twice: 8 single-graph batches total.
        assert sum(infer.batch_sizes) == 8

    def test_expired_requests_get_deadline_not_a_drop(self, metrics):
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0).start()
        outcomes: list[str] = []
        lock = threading.Lock()

        def req(timeout_s):
            try:
                batcher.submit([1.0], timeout_s=timeout_s)
                with lock:
                    outcomes.append("ok")
            except Exception as exc:  # noqa: BLE001
                with lock:
                    outcomes.append(type(exc).__name__)

        blocker = threading.Thread(target=req, args=(None,))
        blocker.start()
        assert infer.entered.wait(timeout=5.0)
        # One queued request whose deadline will expire mid-drain, one
        # without a deadline.
        expired = threading.Thread(target=req, args=(0.01,))
        fresh = threading.Thread(target=req, args=(None,))
        expired.start()
        fresh.start()
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)  # let the 10ms deadline lapse while queued
        stopper = threading.Thread(target=lambda: batcher.stop(timeout=10.0))
        stopper.start()
        infer.release.set()
        stopper.join(timeout=15.0)
        for t in (blocker, expired, fresh):
            t.join(timeout=5.0)
        assert sorted(outcomes) == ["DeadlineExceeded", "ok", "ok"]

    def test_drain_timeout_still_terminal_for_everyone(self, metrics):
        """If the drain cannot finish, leftovers get BatcherStopped —
        terminal either way, never silence."""
        infer = BlockingInfer()
        batcher = MicroBatcher(infer, max_batch=1, max_wait_ms=0).start()
        outcomes: list[str] = []
        lock = threading.Lock()

        def req():
            try:
                batcher.submit([1.0])
                with lock:
                    outcomes.append("ok")
            except Exception as exc:  # noqa: BLE001
                with lock:
                    outcomes.append(type(exc).__name__)

        threads = [threading.Thread(target=req) for _ in range(3)]
        for t in threads:
            t.start()
        assert infer.entered.wait(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        batcher.stop(timeout=0.05)  # drain cannot complete: infer parked
        infer.release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert len(outcomes) == 3
        assert outcomes.count("BatcherStopped") == 2  # the queued two
        assert outcomes.count("ok") == 1  # the one already mid-infer


class TestMultiWorker:
    def test_workers_run_batches_concurrently(self, metrics):
        """Two drainers: two blocking batches can be in flight at once."""
        entered = threading.Semaphore(0)
        release = threading.Event()

        def infer(items):
            entered.release()
            assert release.wait(timeout=10.0)
            return np.asarray(items, dtype=float).reshape(-1, 1), {}

        batcher = MicroBatcher(
            infer, max_batch=1, max_wait_ms=0, workers=2
        ).start()
        assert batcher.workers == 2
        threads = [
            threading.Thread(target=lambda: batcher.submit([1.0]))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        assert entered.acquire(timeout=5.0)
        assert entered.acquire(timeout=5.0), "second worker never picked up"
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        batcher.stop()

    def test_resize_grows_and_shrinks(self, metrics):
        batcher = MicroBatcher(RecordingInfer(), workers=1).start()
        try:
            batcher.resize(3)
            assert batcher.workers == 3
            batcher.resize(1)
            deadline = time.monotonic() + 5.0
            while batcher.workers > 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert batcher.workers == 1
            # Still serves correctly after shrinking.
            result, _ = batcher.submit([7.0])
            assert result[0, 0] == 7.0
        finally:
            batcher.stop()

    def test_multi_worker_results_route_to_the_right_caller(self, metrics):
        batcher = MicroBatcher(
            RecordingInfer(), max_batch=4, max_wait_ms=1.0, workers=4
        ).start()
        try:
            payloads = [[float(i)] for i in range(32)]
            results, errors = submit_concurrently(batcher, payloads)
            assert errors == [None] * 32
            for i, (result, _) in enumerate(results):
                assert result[0, 0] == float(i), "cross-wired response"
        finally:
            batcher.stop()
