"""Wire-format tests: JSON graphs <-> Graph, request parsing."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph import Graph
from repro.serve.codec import (
    MAX_GRAPHS_PER_REQUEST,
    CodecError,
    graph_from_json,
    graph_to_json,
    parse_predict_request,
)
from tests.conftest import random_graphs

pytestmark = pytest.mark.serve


class TestGraphJson:
    def test_roundtrip(self, paper_example_graph):
        obj = graph_to_json(paper_example_graph)
        restored = graph_from_json(obj)
        assert restored == paper_example_graph

    def test_roundtrip_through_json_text(self, triangle):
        restored = graph_from_json(json.loads(json.dumps(graph_to_json(triangle))))
        assert restored == triangle

    @settings(max_examples=50, deadline=None)
    @given(graph=random_graphs())
    def test_roundtrip_property(self, graph):
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_labels_optional(self):
        g = graph_from_json({"num_vertices": 3, "edges": [[0, 1], [1, 2]]})
        assert np.array_equal(g.labels, [0, 0, 0])

    @pytest.mark.parametrize(
        "obj",
        [
            "not an object",
            {},
            {"num_vertices": "three"},
            {"num_vertices": 3, "edges": "nope"},
            {"num_vertices": 3, "edges": [[0]]},
            {"num_vertices": 3, "edges": [[0, "x"]]},
            {"num_vertices": 3, "edges": [[0, 5]]},  # out of range
            {"num_vertices": 3, "edges": [[1, 1]]},  # self-loop
            {"num_vertices": 3, "labels": [0]},  # wrong length
            {"num_vertices": 3, "labels": "abc"},
            {"num_vertices": 3, "weights": [1.0]},  # unknown field
        ],
    )
    def test_bad_graphs_rejected(self, obj):
        with pytest.raises(CodecError):
            graph_from_json(obj)


class TestRequestParsing:
    def _body(self, payload) -> bytes:
        return json.dumps(payload).encode()

    def test_full_request(self, triangle):
        body = self._body(
            {"graphs": [graph_to_json(triangle)], "model": "m", "timeout_ms": 1500}
        )
        graphs, model, timeout_s = parse_predict_request(body)
        assert graphs == [triangle]
        assert model == "m"
        assert timeout_s == pytest.approx(1.5)

    def test_defaults(self, triangle):
        graphs, model, timeout_s = parse_predict_request(
            self._body({"graphs": [graph_to_json(triangle)]})
        )
        assert len(graphs) == 1 and model is None and timeout_s is None

    @pytest.mark.parametrize(
        "body",
        [
            b"",
            b"not json",
            b"[1, 2]",
            b'{"graphs": []}',
            b'{"graphs": "x"}',
            b'{"graphs": [{"num_vertices": 1}], "model": 7}',
            b'{"graphs": [{"num_vertices": 1}], "timeout_ms": "soon"}',
            b'{"graphs": [{"num_vertices": 1}], "timeout_ms": -3}',
            b'{"graphs": [{"num_vertices": 1}], "mystery": true}',
        ],
    )
    def test_bad_requests_rejected(self, body):
        with pytest.raises(CodecError):
            parse_predict_request(body)

    def test_oversized_request_rejected(self):
        graphs = [{"num_vertices": 1, "edges": []}] * (MAX_GRAPHS_PER_REQUEST + 1)
        with pytest.raises(CodecError, match="too many graphs"):
            parse_predict_request(self._body({"graphs": graphs}))

    def test_error_messages_are_client_safe(self):
        try:
            parse_predict_request(b'{"graphs": [{"num_vertices": 2, "edges": [[0, 0]]}]}')
        except CodecError as exc:
            assert "self-loop" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected CodecError")

    def test_graph_equality_preserves_structure(self):
        g = Graph(4, [(0, 1), (2, 3)], [1, 0, 2, 0])
        assert graph_from_json(graph_to_json(g)) == g
