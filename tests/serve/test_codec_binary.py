"""Round-trip and adversarial tests for the binary CSR wire codec.

The codec's contract has two halves.  *Fidelity*: any batch of graphs
round-trips through ``encode_predict_request`` /
``parse_predict_request_binary`` (and the response pair) bitwise — CSR
arrays, labels, and float tensors all land exactly where they started.
*Robustness*: any byte damage — truncation, bit flips, wrong kinds,
non-canonical adjacency — raises :class:`CodecError` (the HTTP layer's
400), never a crash deeper in the stack.  The fuzz cases draw from the
same torn/corrupt-frame corpus as ``tests/dist/test_wire.py``, shared
via :mod:`tests.wire_fuzz`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.serve.codec import (
    CodecError,
    arrays_to_graphs,
    decode_predict_response,
    encode_predict_request,
    encode_predict_response,
    graphs_to_arrays,
    parse_predict_request_binary,
)
from repro.utils import wire

from tests.conftest import random_graphs
from tests.wire_fuzz import bitflipped_frames, garbage_frames, torn_frames


def _assert_graphs_equal(actual: list[Graph], expected: list[Graph]) -> None:
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.n == want.n
        got_indptr, got_indices = got.csr
        want_indptr, want_indices = want.csr
        assert np.array_equal(got_indptr, want_indptr)
        assert np.array_equal(got_indices, want_indices)
        assert list(got.labels) == list(want.labels)


# ----------------------------------------------------------------------
# Round-trip fidelity
# ----------------------------------------------------------------------

class TestRoundTrip:
    @given(st.lists(random_graphs(min_nodes=1, max_nodes=12), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_request_roundtrip_random_batches(self, graphs):
        body = encode_predict_request(graphs, model="m", timeout_ms=1234.5)
        decoded, model, timeout_s = parse_predict_request_binary(body)
        _assert_graphs_equal(decoded, graphs)
        assert model == "m"
        assert timeout_s == pytest.approx(1.2345)

    def test_empty_graph(self):
        graphs = [Graph(0, [])]
        decoded, _, _ = parse_predict_request_binary(encode_predict_request(graphs))
        _assert_graphs_equal(decoded, graphs)

    def test_single_vertex(self):
        graphs = [Graph(1, [], [7])]
        decoded, _, _ = parse_predict_request_binary(encode_predict_request(graphs))
        _assert_graphs_equal(decoded, graphs)

    def test_disconnected_components(self):
        g = Graph(6, [(0, 1), (2, 3)], [0, 1, 2, 0, 1, 2])  # vertices 4,5 isolated
        decoded, _, _ = parse_predict_request_binary(encode_predict_request([g]))
        _assert_graphs_equal(decoded, [g])

    def test_label_edge_cases(self):
        graphs = [
            Graph(3, [(0, 1)], [0, 0, 0]),  # all-equal labels
            Graph(3, [(1, 2)], [2**31, 5, 0]),  # labels beyond int32
            Graph(2, [(0, 1)]),  # default labels (degrees)
        ]
        decoded, _, _ = parse_predict_request_binary(encode_predict_request(graphs))
        _assert_graphs_equal(decoded, graphs)

    def test_mixed_sizes_one_batch(self):
        graphs = [Graph(0, []), Graph(1, [], [3]), Graph(4, [(0, 1), (1, 2), (2, 3)])]
        decoded, _, _ = parse_predict_request_binary(encode_predict_request(graphs))
        _assert_graphs_equal(decoded, graphs)

    def test_optional_fields_absent(self):
        body = encode_predict_request([Graph(2, [(0, 1)])])
        _, model, timeout_s = parse_predict_request_binary(body)
        assert model is None and timeout_s is None

    def test_response_roundtrip_proba_bitwise(self):
        proba = np.random.default_rng(0).random((5, 3))
        body = {"model": "default", "version": 2, "classes": [0, 1, 2], "proba": proba}
        decoded = decode_predict_response(encode_predict_response(body))
        assert np.array_equal(decoded["proba"], proba)
        assert decoded["model"] == "default" and decoded["version"] == 2
        assert decoded["classes"] == [0, 1, 2]

    def test_response_roundtrip_labels(self):
        labels = np.array([1, 0, 2, 1], dtype=np.int64)
        decoded = decode_predict_response(
            encode_predict_response({"model": "m", "version": 1, "labels": labels})
        )
        assert np.array_equal(decoded["labels"], labels)
        assert decoded["labels"].dtype == np.int64


# ----------------------------------------------------------------------
# Flat-array layer (shared with the pool's shared-memory handoff)
# ----------------------------------------------------------------------

class TestArraysLayer:
    @given(st.lists(random_graphs(min_nodes=1, max_nodes=10), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_arrays_roundtrip(self, graphs):
        _assert_graphs_equal(arrays_to_graphs(graphs_to_arrays(graphs)), graphs)

    def test_rejects_out_of_range_indices(self):
        arrays = graphs_to_arrays([Graph(3, [(0, 1), (1, 2)])])
        arrays["indices"] = arrays["indices"].copy()
        arrays["indices"][0] = 99
        with pytest.raises(CodecError):
            arrays_to_graphs(arrays)

    def test_rejects_nonmonotone_indptr(self):
        arrays = graphs_to_arrays([Graph(3, [(0, 1), (1, 2)])])
        arrays["indptr"] = arrays["indptr"].copy()
        arrays["indptr"][1] = 3
        arrays["indptr"][2] = 1
        with pytest.raises(CodecError):
            arrays_to_graphs(arrays)

    def test_rejects_asymmetric_adjacency(self):
        # A directed half-edge: 0 -> 1 present, 1 -> 0 absent.  Canonical
        # CSR for an undirected graph must be symmetric.
        arrays = {
            "num_vertices": np.array([2], dtype=np.int64),
            "indptr": np.array([0, 1, 1], dtype=np.int64),
            "indices": np.array([1], dtype=np.int64),
            "labels": np.array([0, 0], dtype=np.int64),
        }
        with pytest.raises(CodecError, match="canonical"):
            arrays_to_graphs(arrays)

    def test_rejects_length_mismatches(self):
        arrays = graphs_to_arrays([Graph(3, [(0, 1)])])
        bad = dict(arrays)
        bad["labels"] = arrays["labels"][:-1]
        with pytest.raises(CodecError):
            arrays_to_graphs(bad)


# ----------------------------------------------------------------------
# Malformed-frame fuzz: CodecError always, a crash never
# ----------------------------------------------------------------------

_VALID = encode_predict_request(
    [Graph(4, [(0, 1), (1, 2), (2, 3)], [0, 1, 0, 1])], model="default"
)


class TestMalformedFrames:
    def test_truncations_raise_codec_error(self):
        for blob in torn_frames(_VALID):
            with pytest.raises(CodecError):
                parse_predict_request_binary(blob)

    def test_bit_flips_raise_codec_error(self):
        for blob in bitflipped_frames(_VALID):
            try:
                parse_predict_request_binary(blob)
            except CodecError:
                continue
            # A flip can (rarely) land in JSON whitespace or another
            # value-preserving spot; decoding successfully is fine —
            # anything other than CodecError or success is not.

    def test_garbage_raises_codec_error(self):
        for blob in garbage_frames(_VALID):
            with pytest.raises(CodecError):
                parse_predict_request_binary(blob)

    def test_wrong_kind_rejected(self):
        response = encode_predict_response(
            {"model": "m", "version": 1, "labels": np.array([0], dtype=np.int64)}
        )
        with pytest.raises(CodecError, match="kind"):
            parse_predict_request_binary(response)

    def test_valid_wire_frame_bad_payload(self):
        # Structurally valid seal + message, semantically broken graphs.
        header = {"kind": "predict_request", "num_graphs": 1}
        arrays = {
            "num_vertices": np.array([2], dtype=np.int64),
            "indptr": np.array([0, 5, 9], dtype=np.int64),  # out of range
            "indices": np.array([1], dtype=np.int64),
            "labels": np.array([0, 0], dtype=np.int64),
        }
        blob = wire.seal(wire.pack_message(header, arrays))
        with pytest.raises(CodecError):
            parse_predict_request_binary(blob)

    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            parse_predict_request_binary(blob)
        except CodecError:
            pass
