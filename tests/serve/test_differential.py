"""Differential serving harness: every new path equals the old path bitwise.

Serving v2 added two independent axes of freedom — the wire codec
(JSON vs. binary CSR) and the inference backend (in-thread vs. process
pool) — and both are gated here against the original single-thread JSON
path, which the repo's earlier PRs proved bitwise batch-composition
invariant.  The contract: for any batch size in 1..max_batch, any pool
worker count in {1, 2, 4}, and both endpoints, all combinations return
the *same bytes-for-bytes numbers*.  If a refactor ever breaks fusion
order, shm layout, or float serialization, one of these asserts goes
red before any user traffic does.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import ModelRegistry, ReproServer, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.pool import InferencePool


@pytest.fixture(scope="module")
def pool_servers(model_path):
    """One in-thread server plus pool servers at 1/2/4 workers."""
    servers = {}
    registry = ModelRegistry()
    registry.load(model_path)
    thread_server = ReproServer(
        registry, ServeConfig(port=0, max_batch=16, max_wait_ms=1.0, max_queue=64)
    ).start()
    servers["thread"] = thread_server
    for workers in (1, 2, 4):
        reg = ModelRegistry()
        reg.load(model_path)
        servers[f"pool{workers}"] = ReproServer(
            reg,
            ServeConfig(
                port=0,
                max_batch=16,
                max_wait_ms=1.0,
                max_queue=64,
                backend="pool",
                pool_workers=workers,
            ),
        ).start()
    yield servers
    for server in servers.values():
        server.stop()


class TestCodecDifferential:
    """Binary-codec responses bitwise-equal JSON-codec responses."""

    @pytest.mark.parametrize("endpoint", ["predict", "predict_proba"])
    def test_binary_equals_json_all_batch_sizes(
        self, pool_servers, train_data, endpoint
    ):
        graphs, _ = train_data
        url = pool_servers["thread"].url
        json_client = ServeClient(url, codec="json")
        binary_client = ServeClient(url, codec="binary")
        try:
            for size in range(1, 13):  # 12 training graphs available
                batch = graphs[:size]
                call = getattr(json_client, endpoint)
                json_out = call(batch)
                binary_out = getattr(binary_client, endpoint)(batch)
                assert np.array_equal(json_out, binary_out), (
                    f"codec divergence at batch size {size} on {endpoint}"
                )
                assert json_out.dtype == binary_out.dtype
        finally:
            json_client.close()
            binary_client.close()

    @given(data=st.data())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_binary_equals_json_random_batches(
        self, pool_servers, train_data, data
    ):
        graphs, _ = train_data
        indices = data.draw(
            st.lists(st.integers(0, len(graphs) - 1), min_size=1, max_size=16)
        )
        batch = [graphs[i] for i in indices]
        url = pool_servers["thread"].url
        json_client = ServeClient(url, codec="json")
        binary_client = ServeClient(url, codec="binary")
        try:
            assert np.array_equal(
                json_client.predict_proba(batch),
                binary_client.predict_proba(batch),
            )
        finally:
            json_client.close()
            binary_client.close()


class TestBackendDifferential:
    """Pool backend bitwise-equal to the in-thread backend."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("endpoint", ["predict", "predict_proba"])
    def test_pool_equals_thread_all_batch_sizes(
        self, pool_servers, train_data, workers, endpoint
    ):
        graphs, _ = train_data
        thread_client = ServeClient(pool_servers["thread"].url)
        pool_client = ServeClient(pool_servers[f"pool{workers}"].url)
        try:
            for size in (1, 2, 3, 7, 12):
                batch = graphs[:size]
                expected = getattr(thread_client, endpoint)(batch)
                actual = getattr(pool_client, endpoint)(batch)
                assert np.array_equal(expected, actual), (
                    f"backend divergence at {workers} workers, "
                    f"batch size {size}, {endpoint}"
                )
        finally:
            thread_client.close()
            pool_client.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_equals_thread_binary_codec(
        self, pool_servers, train_data, workers
    ):
        """Both axes at once: pool backend driven through the binary codec."""
        graphs, _ = train_data
        thread_client = ServeClient(pool_servers["thread"].url, codec="json")
        pool_client = ServeClient(
            pool_servers[f"pool{workers}"].url, codec="binary"
        )
        try:
            assert np.array_equal(
                thread_client.predict_proba(graphs),
                pool_client.predict_proba(graphs),
            )
        finally:
            thread_client.close()
            pool_client.close()


class TestPoolDirectDifferential:
    """InferencePool.submit == model.predict_proba without HTTP in the way."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_submit_bitwise(self, serve_model, model_path, train_data, workers):
        graphs, _ = train_data
        expected_proba = serve_model.predict_proba(graphs)
        expected_pred = serve_model.predict(graphs)
        pool = InferencePool(model_path, workers=workers).start()
        try:
            for size in range(1, len(graphs) + 1):
                out = pool.submit(graphs[:size], op="predict_proba")
                assert np.array_equal(out, expected_proba[:size])
            assert np.array_equal(
                pool.submit(graphs, op="predict"), expected_pred
            )
        finally:
            pool.stop()

    def test_pipe_fallback_bitwise(
        self, serve_model, model_path, train_data, monkeypatch
    ):
        """REPRO_SERVE_NO_SHM=1 forces the pickle-over-pipe path."""
        monkeypatch.setenv("REPRO_SERVE_NO_SHM", "1")
        graphs, _ = train_data
        expected = serve_model.predict_proba(graphs)
        pool = InferencePool(model_path, workers=2).start()
        try:
            assert np.array_equal(
                pool.submit(graphs, op="predict_proba"), expected
            )
            assert pool.respawns == 0
        finally:
            pool.stop()
