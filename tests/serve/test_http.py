"""HTTP front-end tests: endpoints, status-code contract, metrics.

The acceptance property lives here too: concurrent single-graph requests
against a live server return probabilities *bitwise identical* to an
in-process ``predict_proba`` — JSON's shortest-repr float encoding
round-trips exactly, so not even the wire blurs the comparison.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import MicroBatcher, ServeClient, ServeClientError
from tests.conftest import random_graphs

pytestmark = pytest.mark.serve


@pytest.fixture
def client(live_server):
    c = ServeClient(live_server.url)
    yield c
    c.close()


class TestEndpoints:
    def test_healthz(self, client, live_server):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0
        models = {m["name"]: m for m in body["models"]}
        assert models["default"]["feature_map"] == "wl"
        assert body["config"]["max_batch"] == 16

    def test_predict_proba_matches_in_process_bitwise(
        self, client, serve_model, train_data
    ):
        graphs, _ = train_data
        remote = client.predict_proba(graphs)
        local = serve_model.predict_proba(graphs)
        np.testing.assert_array_equal(remote, local)

    def test_predict_labels_are_argmax_of_proba(self, client, serve_model, train_data):
        graphs, _ = train_data
        labels = client.predict(graphs)
        proba = serve_model.predict_proba(graphs)
        classes = np.asarray(serve_model.classes_)
        np.testing.assert_array_equal(labels, classes[np.argmax(proba, axis=1)])

    def test_metrics_exposes_serving_surface(self, client, train_data):
        graphs, _ = train_data
        client.predict_proba(graphs[:2])
        text = client.metrics()
        assert "serve_queue_depth" in text
        assert 'serve_batch_size_bucket{le="1"}' in text
        assert "serve_requests_shed_total" in text
        assert "serve_deadline_expired_total" in text
        assert "serve_request_seconds_count" in text
        assert "text/plain" in self._metrics_content_type(client)

    @staticmethod
    def _metrics_content_type(client) -> str:
        status, headers, _ = client.request("GET", "/metrics")
        assert status == 200
        return headers["content-type"]

    def test_metrics_present_before_any_request(self, model_path):
        from repro.serve import ModelRegistry, ReproServer, ServeConfig

        registry = ModelRegistry(warm=False)
        registry.load(model_path)
        with ReproServer(registry, ServeConfig(port=0)) as server:
            text = ServeClient(server.url).metrics()
        # The metrics registry is process-global, so other tests may have
        # already moved these series; what start() guarantees is that the
        # full serving surface is *registered* before the first request.
        assert "serve_requests_shed_total" in text
        assert "serve_queue_depth" in text
        assert "serve_batch_size_count" in text
        assert "serve_deadline_expired_total" in text
        assert "serve_request_seconds_count" in text


class TestStatusContract:
    def test_malformed_body_is_400(self, client):
        status, _, body = client.request(
            "POST", "/v1/predict", {"graphs": [], "model": "default"}
        )
        assert status == 400
        assert "error" in json.loads(body)

    def test_unknown_model_is_404(self, client, triangle):
        with pytest.raises(ServeClientError) as exc_info:
            client.predict([triangle], model="missing")
        assert exc_info.value.status == 404

    def test_unknown_path_is_404(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/v1/nope", {"graphs": []})[0] == 404

    def test_stopped_batcher_is_503(self, live_server, client, triangle):
        stopped = MicroBatcher(lambda graphs: (np.zeros((len(graphs), 2)), {}))
        with live_server._batcher_lock:
            live_server._batchers["dead"] = stopped
        try:
            live_server.registry._latest["dead"] = 1
            live_server.registry._slots["dead"] = {
                1: live_server.registry.get("default")
            }
            with pytest.raises(ServeClientError) as exc_info:
                client.predict([triangle], model="dead")
            assert exc_info.value.status == 503
        finally:
            with live_server._batcher_lock:
                live_server._batchers.pop("dead", None)
            live_server.registry._latest.pop("dead", None)
            live_server.registry._slots.pop("dead", None)


class TestOverload:
    """429/504 need a server whose worker we can park: fake slow model."""

    @pytest.fixture
    def slow_server(self, model_path):
        from repro.serve import ModelRegistry, ReproServer, ServeConfig

        registry = ModelRegistry(warm=False)
        registry.load(model_path)
        server = ReproServer(
            registry,
            ServeConfig(port=0, max_batch=1, max_wait_ms=0, max_queue=1, retry_after_s=7),
        )
        server.start()
        entered = threading.Event()
        release = threading.Event()

        def blocking_infer(graphs):
            entered.set()
            assert release.wait(timeout=10.0)
            return np.full((len(graphs), 2), 0.5), {
                "model": "default",
                "version": 1,
                "classes": [0, 1],
            }

        batcher = MicroBatcher(
            blocking_infer, max_batch=1, max_wait_ms=0, max_queue=1
        ).start()
        with server._batcher_lock:
            server._batchers["default"] = batcher
        yield server, entered, release
        release.set()
        server.stop()

    def _post(self, url, triangle, results, timeout_ms=None):
        client = ServeClient(url)
        payload = ServeClient._payload([triangle], None, timeout_ms)
        try:
            results.append(client.request("POST", "/v1/predict", payload))
        finally:
            client.close()

    def test_shed_is_429_with_retry_after(self, slow_server, triangle):
        server, entered, release = slow_server
        results: list = []
        # One request occupies the worker, one fills the queue (max_queue=1).
        t1 = threading.Thread(target=self._post, args=(server.url, triangle, results))
        t1.start()
        assert entered.wait(timeout=5.0)
        t2 = threading.Thread(target=self._post, args=(server.url, triangle, results))
        t2.start()
        batcher = server.batcher_for("default")
        for _ in range(1000):
            if batcher.depth() >= 1:
                break
            time.sleep(0.005)
        else:
            pytest.fail("queued request never reached the batcher")
        overflow: list = []
        self._post(server.url, triangle, overflow)
        status, headers, body = overflow[0]
        assert status == 429
        assert headers["retry-after"] == "7"
        assert "queue full" in json.loads(body)["error"]
        release.set()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert sorted(r[0] for r in results) == [200, 200]

    def test_expired_deadline_is_504(self, slow_server, triangle):
        server, entered, release = slow_server
        results: list = []
        t1 = threading.Thread(target=self._post, args=(server.url, triangle, results))
        t1.start()
        assert entered.wait(timeout=5.0)
        expired: list = []
        self._post(server.url, triangle, expired, timeout_ms=50)
        assert expired[0][0] == 504
        release.set()
        t1.join(timeout=5.0)
        assert results[0][0] == 200


class TestConcurrentBitwiseProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(graph_list=st.lists(random_graphs(), min_size=1, max_size=5))
    def test_concurrent_requests_bitwise_equal_in_process(
        self, live_server, serve_model, graph_list
    ):
        """Each concurrent single-graph request returns exactly the row
        that an in-process batched ``predict_proba`` produces."""
        rows = [None] * len(graph_list)
        errors = [None] * len(graph_list)

        def worker(i):
            client = ServeClient(live_server.url)
            try:
                rows[i] = client.predict_proba([graph_list[i]])[0]
            except Exception as exc:  # noqa: BLE001
                errors[i] = exc
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(graph_list))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == [None] * len(graph_list)
        local = serve_model.predict_proba(graph_list)
        np.testing.assert_array_equal(np.stack(rows), local)
