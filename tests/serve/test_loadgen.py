"""Load-generator tests: accounting, batching evidence, promtext parsing."""

from __future__ import annotations

import json

import pytest

from repro.serve import LoadResult, run_load
from repro.serve.loadgen import parse_promtext

pytestmark = pytest.mark.serve


class TestParsePromtext:
    def test_keeps_bare_series_skips_labels_and_comments(self):
        text = (
            "# TYPE serve_batch_size histogram\n"
            'serve_batch_size_bucket{le="1"} 3\n'
            "serve_batch_size_sum 41.5\n"
            "serve_batch_size_count 9\n"
            "serve_queue_depth 2\n"
            "garbage line with words\n"
        )
        values = parse_promtext(text)
        assert values == {
            "serve_batch_size_sum": 41.5,
            "serve_batch_size_count": 9.0,
            "serve_queue_depth": 2.0,
        }


class TestValidation:
    def test_rejects_bad_arguments(self, triangle):
        url = "http://127.0.0.1:1"
        with pytest.raises(ValueError, match="at least one graph"):
            run_load(url, [])
        with pytest.raises(ValueError, match="mode"):
            run_load(url, [triangle], mode="spiral")
        with pytest.raises(ValueError, match="endpoint"):
            run_load(url, [triangle], endpoint="teleport")
        with pytest.raises(ValueError, match="rps"):
            run_load(url, [triangle], mode="open")
        with pytest.raises(ValueError, match="concurrency"):
            run_load(url, [triangle], concurrency=0)


class TestResultArithmetic:
    def test_percentiles_and_dict(self):
        result = LoadResult(
            mode="closed",
            endpoint="predict",
            concurrency=2,
            target_rps=None,
            duration_s=2.0,
            attempted=10,
            ok=8,
            shed=1,
            deadline_expired=1,
            latencies_ms=[float(i) for i in range(1, 9)],
        )
        assert result.answered == 10
        assert result.throughput_rps == 4.0
        assert result.percentile_ms(50) <= result.percentile_ms(95)
        assert result.percentile_ms(95) <= result.percentile_ms(99)
        as_dict = result.to_dict()
        assert json.loads(json.dumps(as_dict)) == as_dict
        assert as_dict["latency_ms"]["p50"] == 4.5
        assert "shed(429) 1" in result.summary()


class TestAgainstLiveServer:
    def test_closed_loop_demonstrates_batching(self, live_server, train_data):
        graphs, _ = train_data
        result = run_load(
            live_server.url,
            graphs,
            mode="closed",
            concurrency=8,
            duration_s=1.5,
        )
        # Every request was answered with 200 or 429 — nothing dropped.
        assert result.attempted > 0
        assert result.transport_errors == 0
        assert result.answered == result.attempted
        assert result.deadline_expired == 0 and not result.other_status
        assert result.ok + result.shed == result.attempted
        # Eight think-time-zero workers against one inference thread must
        # pile up, so the server fuses requests: this is the acceptance
        # criterion that concurrency turns into larger batches.
        assert result.mean_batch_size is not None
        assert result.mean_batch_size > 1.0
        assert result.batches is not None and result.batches >= 1
        assert result.percentile_ms(50) <= result.percentile_ms(99)
        # The admission queue's high-water mark comes from the same
        # atomic after-run metrics snapshot; with eight workers piling
        # onto one inference thread the queue must have been non-empty.
        assert result.queue_depth_peak is not None
        assert result.queue_depth_peak >= 1
        assert "admission queue high-water" in result.summary()
        assert result.to_dict()["queue_depth_peak"] == result.queue_depth_peak

    def test_open_loop_paces_requests(self, live_server, train_data):
        graphs, _ = train_data
        result = run_load(
            live_server.url,
            graphs,
            mode="open",
            rps=30,
            concurrency=4,
            duration_s=1.0,
        )
        # Constant pacing: ~rps * duration tickets fire, give or take the
        # final partial interval.
        assert 20 <= result.attempted <= 35
        assert result.transport_errors == 0
        assert result.answered == result.attempted
