"""Pool-worker fault injection: bounded respawn, then graceful degradation.

Workers are killed (``os._exit``) or blown up (``InjectedFault``) via the
``REPRO_FAULTS`` DSL at the ``pool_worker`` injection point, which
matches on job ids.  The invariants under attack:

* a death mid-job is retried on a fresh worker — the caller still gets
  the bitwise-correct answer and never sees the crash;
* each death burns one respawn from a bounded budget; exhausting it
  flips the pool to *degraded* — no more processes are spawned, every
  subsequent batch runs in-thread (fallback), and ``/healthz`` reports
  ``degraded``;
* degradation is a soft failure: responses stay correct throughout.
"""

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import ModelRegistry, ReproServer, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.pool import FAULT_POINT, InferencePool, PoolError


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _kill_jobs(indices, tmp_path, mode="kill"):
    spec = ",".join(f"{mode}@{FAULT_POINT}:{i}" for i in indices)
    faults.install(spec, state_dir=tmp_path)


class TestRespawn:
    def test_kill_respawns_and_answers_correctly(
        self, serve_model, model_path, train_data, tmp_path
    ):
        graphs, _ = train_data
        expected = serve_model.predict_proba(graphs)
        _kill_jobs([0], tmp_path)
        pool = InferencePool(model_path, workers=2).start()
        try:
            out = pool.submit(graphs, op="predict_proba")
            assert np.array_equal(out, expected)
            assert pool.respawns == 1
            assert not pool.degraded
            # Subsequent jobs run clean on the respawned worker.
            assert np.array_equal(
                pool.submit(graphs[:3], op="predict_proba"), expected[:3]
            )
            assert pool.respawns == 1
        finally:
            pool.stop()

    def test_injected_raise_also_burns_a_respawn(
        self, serve_model, model_path, train_data, tmp_path
    ):
        """InjectedFault is a BaseException: it must escape the worker's
        per-job error handling and kill the process, not turn into an
        ``ok: false`` reply."""
        graphs, _ = train_data
        _kill_jobs([0], tmp_path, mode="raise")
        pool = InferencePool(model_path, workers=1).start()
        try:
            out = pool.submit(graphs[:2], op="predict_proba")
            assert np.array_equal(out, serve_model.predict_proba(graphs[:2]))
            assert pool.respawns == 1
        finally:
            pool.stop()


class TestDegradation:
    def test_budget_exhaustion_degrades_to_fallback(
        self, serve_model, model_path, train_data, tmp_path
    ):
        graphs, _ = train_data
        expected = serve_model.predict_proba(graphs)
        _kill_jobs(range(8), tmp_path)  # kill every early job
        pool = InferencePool(
            model_path,
            workers=1,
            max_respawns=2,
            fallback=lambda g, op: serve_model.predict_proba(g),
        ).start()
        try:
            out = pool.submit(graphs, op="predict_proba")
            assert np.array_equal(out, expected)
            assert pool.degraded
            assert pool.respawns == 2
            # Degraded pool keeps answering through the fallback.
            assert np.array_equal(
                pool.submit(graphs[:4], op="predict_proba"), expected[:4]
            )
        finally:
            pool.stop()

    def test_degraded_without_fallback_raises_pool_error(
        self, model_path, train_data, tmp_path
    ):
        graphs, _ = train_data
        _kill_jobs(range(8), tmp_path)
        pool = InferencePool(model_path, workers=1, max_respawns=1).start()
        try:
            with pytest.raises(PoolError, match="degraded"):
                pool.submit(graphs[:2])
            assert pool.degraded
        finally:
            pool.stop()


class TestServerDegradation:
    def test_healthz_reports_degraded_and_serving_continues(
        self, serve_model, model_path, train_data, tmp_path
    ):
        """End to end: pool workers keep dying -> server degrades to
        in-thread execution, stays correct, and /healthz says so."""
        graphs, _ = train_data
        expected = serve_model.predict_proba(graphs)
        _kill_jobs(range(10), tmp_path)
        registry = ModelRegistry()
        registry.load(model_path)
        server = ReproServer(
            registry,
            ServeConfig(
                port=0,
                max_batch=16,
                max_wait_ms=1.0,
                backend="pool",
                pool_workers=1,
                pool_max_respawns=2,
            ),
        ).start()
        client = ServeClient(server.url)
        try:
            out = client.predict_proba(graphs)
            assert np.array_equal(out, expected), "degraded answer diverged"
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["backend"]["pool"]["degraded"] is True
            # Still serving, still bitwise-correct, after degradation.
            assert np.array_equal(client.predict_proba(graphs[:5]), expected[:5])
        finally:
            client.close()
            server.stop()

    def test_single_kill_stays_healthy(
        self, serve_model, model_path, train_data, tmp_path
    ):
        graphs, _ = train_data
        _kill_jobs([0], tmp_path)
        registry = ModelRegistry()
        registry.load(model_path)
        server = ReproServer(
            registry,
            ServeConfig(
                port=0, max_batch=16, max_wait_ms=1.0,
                backend="pool", pool_workers=2,
            ),
        ).start()
        client = ServeClient(server.url)
        try:
            out = client.predict_proba(graphs)
            assert np.array_equal(out, serve_model.predict_proba(graphs))
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["backend"]["pool"]["respawns"] == 1
            assert health["backend"]["pool"]["degraded"] is False
        finally:
            client.close()
            server.stop()
