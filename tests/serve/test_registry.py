"""Registry tests: versioned slots, warm preloading, atomic hot-swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import save_model
from repro.core.persistence import ModelPersistenceError
from repro.serve import ModelRegistry

pytestmark = pytest.mark.serve


class TestLoad:
    def test_load_assigns_version_one(self, model_path):
        registry = ModelRegistry(warm=False)
        entry = registry.load(model_path)
        assert entry.name == "default"
        assert entry.version == 1
        assert entry.path == str(model_path)
        assert len(registry) == 1

    def test_loaded_model_predicts_like_the_original(
        self, model_path, serve_model, train_data
    ):
        graphs, _ = train_data
        registry = ModelRegistry(warm=False)
        entry = registry.load(model_path)
        np.testing.assert_array_equal(
            entry.model.predict_proba(graphs), serve_model.predict_proba(graphs)
        )

    def test_reload_bumps_version_and_latest_wins(self, model_path):
        registry = ModelRegistry(warm=False)
        first = registry.load(model_path)
        second = registry.load(model_path)
        assert (first.version, second.version) == (1, 2)
        assert registry.get().version == 2
        assert registry.get(version=1) is first
        assert len(registry) == 2

    def test_named_slots_are_independent(self, model_path):
        registry = ModelRegistry(warm=False)
        registry.load(model_path, name="a")
        registry.load(model_path, name="b")
        registry.load(model_path, name="b")
        assert registry.names() == ["a", "b"]
        assert registry.get("a").version == 1
        assert registry.get("b").version == 2

    def test_corrupt_artifact_never_enters_a_slot(self, model_path, tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(model_path.read_bytes()[:-7])
        registry = ModelRegistry(warm=False)
        with pytest.raises(ModelPersistenceError):
            registry.load(bad)
        assert len(registry) == 0


class TestWarmup:
    def test_load_warms_by_default(self, model_path):
        entry = ModelRegistry().load(model_path)
        assert entry.warmed
        assert entry.warmup_seconds > 0

    def test_warm_opt_out(self, model_path):
        per_call = ModelRegistry().load(model_path, warm=False)
        per_registry = ModelRegistry(warm=False).load(model_path)
        assert not per_call.warmed and per_call.warmup_seconds == 0.0
        assert not per_registry.warmed

    def test_describe_is_json_safe(self, model_path):
        import json

        entry = ModelRegistry().load(model_path)
        desc = entry.describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["name"] == "default"
        assert desc["version"] == 1
        assert desc["warmed"] is True
        assert desc["classes"] == [0, 1]


class TestGetAndSwap:
    def test_get_unknown_name(self):
        with pytest.raises(KeyError, match="unknown model"):
            ModelRegistry().get("nope")

    def test_get_unknown_version(self, model_path):
        registry = ModelRegistry(warm=False)
        registry.load(model_path)
        with pytest.raises(KeyError, match="no version"):
            registry.get(version=9)

    def test_swap_requires_existing_name(self, model_path):
        registry = ModelRegistry(warm=False)
        with pytest.raises(KeyError, match="cannot swap unknown model"):
            registry.swap("default", model_path)

    def test_swap_publishes_a_new_version(self, model_path, serve_model, tmp_path):
        replacement = tmp_path / "replacement.pkl"
        save_model(serve_model, replacement)
        registry = ModelRegistry(warm=False)
        old = registry.load(model_path)
        new = registry.swap("default", replacement)
        assert new.version == old.version + 1
        assert registry.get().path == str(replacement)
        # The old version stays resolvable: in-flight batches that
        # already grabbed it keep a live entry.
        assert registry.get(version=old.version) is old
