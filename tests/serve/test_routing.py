"""Canary and shadow routing: deterministic splits, channel isolation,
and compare-but-never-return shadow semantics.
"""

import numpy as np
import pytest

from repro import obs
from repro.serve import ModelRegistry, ReproServer, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.registry import canary_fraction, parse_canary_spec


class TestParseCanarySpec:
    def test_parses_name_version_pct(self):
        assert parse_canary_spec("default@2:10") == ("default", 2, 10.0)
        assert parse_canary_spec("my-model@13:0.5") == ("my-model", 13, 0.5)

    def test_name_may_contain_at_and_colon_free_tail(self):
        assert parse_canary_spec("a@b@3:25") == ("a@b", 3, 25.0)

    @pytest.mark.parametrize(
        "bad", ["", "default", "default@1", "default@x:10", "@1:10",
                "default@1:0", "default@1:101", "default@1:-5"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_canary_spec(bad)


class TestCanaryFraction:
    def test_deterministic(self):
        assert canary_fraction("m", "abc") == canary_fraction("m", "abc")

    def test_slots_get_uncorrelated_splits(self):
        assert canary_fraction("a", "trace-1") != canary_fraction("b", "trace-1")

    def test_roughly_uniform(self):
        fracs = [canary_fraction("m", f"{i:032x}") for i in range(2000)]
        share = sum(1 for f in fracs if f < 10.0) / len(fracs)
        assert 0.06 < share < 0.14  # 10% +- sampling noise


class TestRegistryRouting:
    def test_set_canary_requires_existing_version(self, model_path):
        registry = ModelRegistry()
        registry.load(model_path)
        with pytest.raises(KeyError):
            registry.set_canary("default", 99, 10.0)
        with pytest.raises(KeyError):
            registry.set_shadow("default", 99)

    def test_route_splits_deterministically(self, model_path):
        registry = ModelRegistry()
        registry.load(model_path)  # v1
        registry.load(model_path)  # v2 (latest)
        registry.set_canary("default", 1, 30.0)
        channels = {}
        for i in range(50):
            trace = f"{i:032x}"
            entry, channel = registry.route("default", trace)
            channels[trace] = channel
            if channel == "canary":
                assert entry.version == 1
            else:
                assert entry.version == 2
        assert set(channels.values()) == {"stable", "canary"}
        # Re-routing the same trace ids lands on the same channels.
        for trace, channel in channels.items():
            assert registry.route("default", trace)[1] == channel

    def test_clear_canary_restores_stable_only(self, model_path):
        registry = ModelRegistry()
        registry.load(model_path)
        registry.load(model_path)
        registry.set_canary("default", 1, 99.0)
        registry.clear_canary("default")
        for i in range(20):
            _, channel = registry.route("default", f"{i:032x}")
            assert channel == "stable"

    def test_describe_shows_routes(self, model_path):
        registry = ModelRegistry()
        registry.load(model_path)
        registry.load(model_path)
        registry.set_canary("default", 1, 10.0)
        registry.set_shadow("default", 1)
        (info,) = registry.describe()
        assert info["canary"] == {"version": 1, "pct": 10.0}
        assert info["shadow"] == {"version": 1}
        registry.clear_canary("default")
        registry.clear_shadow("default")
        (info,) = registry.describe()
        assert "canary" not in info and "shadow" not in info


@pytest.fixture()
def two_version_server(model_path):
    registry = ModelRegistry()
    registry.load(model_path)  # v1
    registry.load(model_path)  # v2
    server = ReproServer(
        registry, ServeConfig(port=0, max_batch=16, max_wait_ms=1.0)
    ).start()
    yield server, registry
    server.stop()


class TestServerCanary:
    def test_canary_traffic_split_and_response_channel(
        self, two_version_server, train_data
    ):
        server, registry = two_version_server
        registry.set_canary("default", 1, 50.0)
        graphs, _ = train_data
        client = ServeClient(server.url)
        seen = {"stable": 0, "canary": 0}
        try:
            for i in range(24):
                trace = f"{i:032x}"
                status, _, body = client.request(
                    "POST",
                    "/v1/predict_proba",
                    {"graphs": [_graph_json(graphs[i % len(graphs)])]},
                    trace_id=trace,
                )
                assert status == 200
                import json

                parsed = json.loads(body)
                channel = parsed["channel"]
                seen[channel] += 1
                expected_version = 1 if channel == "canary" else 2
                assert parsed["version"] == expected_version
        finally:
            registry.clear_canary("default")
            client.close()
        assert seen["stable"] > 0 and seen["canary"] > 0

    def test_canary_and_stable_answers_both_bitwise_correct(
        self, two_version_server, train_data, serve_model
    ):
        """Both versions are the same artifact here, so every channel
        must return the same bitwise result as the in-memory model."""
        server, registry = two_version_server
        registry.set_canary("default", 1, 50.0)
        graphs, _ = train_data
        expected = serve_model.predict_proba(graphs[:3])
        client = ServeClient(server.url)
        try:
            for i in range(10):
                out = client.predict_proba(graphs[:3], trace_id=f"{i:032x}")
                assert np.array_equal(out, expected)
        finally:
            registry.clear_canary("default")
            client.close()


class TestServerShadow:
    def test_shadow_counted_never_returned(self, two_version_server, train_data):
        server, registry = two_version_server
        registry.set_shadow("default", 1)
        graphs, _ = train_data
        client = ServeClient(server.url)
        try:
            before = obs.counter("serve_shadow_batches_total").value
            agree_before = obs.counter("serve_shadow_agree_total").value
            out = client.predict_proba(graphs[:4])
            assert out.shape[0] == 4  # the live answer, nothing extra
            assert obs.counter("serve_shadow_batches_total").value > before
            # Identical artifacts agree on every graph.
            agreed = obs.counter("serve_shadow_agree_total").value - agree_before
            assert agreed == 4
            assert obs.counter("serve_shadow_mismatch_total").value == 0
        finally:
            registry.clear_shadow("default")
            client.close()

    def test_self_shadow_is_skipped(self, two_version_server, train_data):
        """Shadowing the live version itself is a no-op, not a double run."""
        server, registry = two_version_server
        registry.set_shadow("default", 2)  # same as latest
        graphs, _ = train_data
        client = ServeClient(server.url)
        try:
            before = obs.counter("serve_shadow_batches_total").value
            client.predict_proba(graphs[:2])
            assert obs.counter("serve_shadow_batches_total").value == before
        finally:
            registry.clear_shadow("default")
            client.close()


def _graph_json(graph):
    from repro.serve.codec import graph_to_json

    return graph_to_json(graph)
