"""End-to-end request tracing, SLO, and access-log tests against live servers.

These pin the tentpole acceptance criteria: every response carries a
trace id; ``GET /v1/traces/<id>`` resolves it to a complete
queue_wait -> batch_wait -> infer -> serialize waterfall whose stage
durations sum to within the measured request latency; an SLO breach
under overload flips ``/healthz`` to degraded; and every response emits
one structured ``http_access`` event.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs.reqtrace import TRACE_HEADER, WATERFALL_STAGES, build_waterfall
from repro.serve import MicroBatcher, ServeClient, ServeClientError

pytestmark = pytest.mark.serve


@pytest.fixture
def client(live_server):
    c = ServeClient(live_server.url)
    yield c
    c.close()


def _get_trace(client, trace_id: str, timeout_s: float = 2.0) -> dict:
    # traces.put also runs after the response flush; retry a 404 briefly.
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return client.trace(trace_id)
        except ServeClientError as exc:
            if exc.status != 404 or time.monotonic() >= deadline:
                raise
            time.sleep(0.005)


def _access_records(trace_id: str, timeout_s: float = 2.0) -> list[dict]:
    # The handler emits the access event *after* flushing the response,
    # so poll briefly: the client can outrun the handler thread's tail.
    deadline = time.monotonic() + timeout_s
    while True:
        found = [
            r
            for r in obs.get_event_log().records(kind="event", name="http_access")
            if r["attrs"].get("trace_id") == trace_id
        ]
        if found or time.monotonic() >= deadline:
            return found
        time.sleep(0.005)


class TestTraceEcho:
    def test_response_carries_trace_id_in_header_and_body(self, client, triangle):
        payload = ServeClient._payload([triangle], None, None)
        status, headers, body = client.request("POST", "/v1/predict", payload)
        assert status == 200
        import json

        parsed = json.loads(body)
        assert headers[TRACE_HEADER.lower()] == parsed["trace_id"]
        assert parsed["trace_id"] == client.last_trace_id

    def test_valid_supplied_id_is_adopted(self, client, triangle):
        client.predict([triangle], trace_id="deadbeefcafef00d")
        assert client.last_trace_id == "deadbeefcafef00d"

    def test_invalid_supplied_id_is_replaced(self, client, triangle):
        client.predict([triangle], trace_id="nope")
        assert client.last_trace_id != "nope"
        assert len(client.last_trace_id) == 16

    def test_error_responses_carry_trace_id_too(self, client, triangle):
        status, headers, body = client.request(
            "POST", "/v1/predict", {"graphs": "not-a-list"}
        )
        assert status == 400
        assert headers[TRACE_HEADER.lower()]
        assert b"trace_id" in body
        with pytest.raises(ServeClientError) as excinfo:
            client.predict([triangle], model="ghost", trace_id="feedfacefeedface")
        assert excinfo.value.status == 404
        assert client.last_trace_id == "feedfacefeedface"


class TestTraceEndpoint:
    def test_waterfall_is_complete_and_sums_within_latency(self, client, triangle):
        t0 = time.perf_counter()
        client.predict_proba([triangle])
        measured_s = time.perf_counter() - t0
        record = _get_trace(client, client.last_trace_id)
        assert record["status"] == 200
        assert record["endpoint"] == "predict_proba"
        assert record["model"] == "default"
        assert record["batch_id"]
        names = [s["name"] for s in record["spans"]]
        assert names == list(WATERFALL_STAGES)
        accounted = sum(s["duration_s"] for s in record["spans"])
        # Stage durations decompose the request: they can never exceed
        # the server-side total, which is itself within the client-side
        # measurement (client adds network + parse overhead on top).
        assert accounted <= record["duration_s"] + 1e-9
        assert record["duration_s"] <= measured_s + 1e-9
        offsets = [s["offset_s"] for s in record["spans"]]
        assert offsets == sorted(offsets)
        assert all(s["duration_s"] >= 0 for s in record["spans"])

    def test_unknown_trace_is_404(self, client):
        status, _, _ = client.request("GET", "/v1/traces/0123456789abcdef")
        assert status == 404

    def test_shed_request_is_traced_without_infer_stage(self, model_path, triangle):
        from repro.serve import ModelRegistry, ReproServer, ServeConfig

        registry = ModelRegistry(warm=False)
        registry.load(model_path)
        server = ReproServer(registry, ServeConfig(port=0, max_queue=1))
        server.start()
        entered = threading.Event()
        release = threading.Event()

        def blocking_infer(graphs):
            entered.set()
            assert release.wait(timeout=10.0)
            return np.full((len(graphs), 2), 0.5), {
                "model": "default", "version": 1, "classes": [0, 1],
            }

        batcher = MicroBatcher(blocking_infer, max_batch=1, max_wait_ms=0, max_queue=1)
        batcher.start()
        with server._batcher_lock:
            server._batchers["default"] = batcher
        try:
            # Park the worker, fill the queue, then observe one shed.
            payload = ServeClient._payload([triangle], None, None)
            background = []

            def send_one():
                ServeClient(server.url).request("POST", "/v1/predict", payload)

            t1 = threading.Thread(target=send_one, daemon=True)
            t1.start()
            background.append(t1)
            assert entered.wait(timeout=5.0)  # worker parked in infer
            t2 = threading.Thread(target=send_one, daemon=True)
            t2.start()
            background.append(t2)
            deadline = time.monotonic() + 5.0
            while batcher.depth() < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert batcher.depth() >= 1  # admission queue is full
            probe = ServeClient(server.url)
            status, _, _ = probe.request(
                "POST", "/v1/predict", payload, trace_id="feedbead12345678"
            )
            assert status == 429
            record = _get_trace(probe, "feedbead12345678")
            probe.close()
            assert record["status"] == 429
            assert "infer" not in [s["name"] for s in record["spans"]]
        finally:
            release.set()
            for t in background:
                t.join(timeout=5.0)
            server.stop()


class TestOfflineParity:
    def test_jsonl_reconstruction_matches_live_store(self, client, triangle):
        client.predict_proba([triangle], trace_id="0ff1ce0ff1ce0001")
        live = _get_trace(client, "0ff1ce0ff1ce0001")
        # The request span record lands in the event log just after the
        # trace-store entry; poll the reconstruction briefly too.
        deadline = time.monotonic() + 2.0
        rebuilt = None
        while rebuilt is None and time.monotonic() < deadline:
            rebuilt = build_waterfall(
                obs.get_event_log().records(), "0ff1ce0ff1ce0001"
            )
            if rebuilt is None:
                time.sleep(0.005)
        assert rebuilt is not None
        assert rebuilt["endpoint"] == live["endpoint"]
        assert rebuilt["model"] == live["model"]
        assert rebuilt["status"] == live["status"]
        assert rebuilt["batch_id"] == live["batch_id"]
        assert [s["name"] for s in rebuilt["spans"]] == [
            s["name"] for s in live["spans"]
        ]
        for offline, online in zip(rebuilt["spans"], live["spans"]):
            assert offline["duration_s"] == pytest.approx(
                online["duration_s"], abs=1e-6
            )

    def test_batch_span_links_fused_trace_ids(self, client, triangle):
        client.predict([triangle], trace_id="ba7c41d000000001")
        deadline = time.monotonic() + 2.0
        batch_spans: list = []
        while not batch_spans and time.monotonic() < deadline:
            batch_spans = [
                r
                for r in obs.get_event_log().records(kind="span", name="serve_batch")
                if "ba7c41d000000001" in (r["attrs"].get("links") or [])
            ]
            if not batch_spans:
                time.sleep(0.005)
        assert len(batch_spans) == 1
        live = _get_trace(client, "ba7c41d000000001")
        assert batch_spans[0]["attrs"]["batch_id"] == live["batch_id"]


class TestAccessLog:
    def test_predict_emits_structured_access_event(self, client, triangle):
        client.predict([triangle], trace_id="acce55ed00000001")
        (record,) = _access_records("acce55ed00000001")
        attrs = record["attrs"]
        assert attrs["method"] == "POST"
        assert attrs["path"] == "/v1/predict"
        assert attrs["status"] == 200
        assert attrs["duration_ms"] > 0

    def test_get_requests_logged_too(self, client):
        before = len(obs.get_event_log().records(kind="event", name="http_access"))
        client.healthz()
        client.metrics()
        deadline = time.monotonic() + 2.0
        while True:
            after = obs.get_event_log().records(kind="event", name="http_access")
            if len(after) >= before + 2 or time.monotonic() >= deadline:
                break
            time.sleep(0.005)
        assert len(after) == before + 2
        assert {r["attrs"]["path"] for r in after[-2:]} == {"/healthz", "/metrics"}
        assert all(r["attrs"]["method"] == "GET" for r in after[-2:])

    def test_errors_logged_with_status(self, client):
        status, headers, _ = client.request("POST", "/v1/nowhere", {})
        trace_id = headers[TRACE_HEADER.lower()]
        assert status == 404
        (record,) = _access_records(trace_id)
        assert record["attrs"]["status"] == 404


class TestHealthzSlo:
    def test_healthz_exposes_slo_and_resources(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["slo"]["status"] == "ok"
        assert "objectives" in body["slo"] and "window" in body["slo"]
        assert body["resources"]["rss_bytes"] > 0
        assert body["config"]["slo_latency_p95_ms"] == 500.0

    def test_overload_breach_flips_healthz_degraded(self, model_path, triangle):
        """Open-loop overload: sheds spend error budget -> degraded."""
        from repro.serve import ModelRegistry, ReproServer, ServeConfig

        registry = ModelRegistry(warm=False)
        registry.load(model_path)
        server = ReproServer(
            registry,
            ServeConfig(
                port=0,
                max_queue=1,
                slo_error_rate_target=0.05,
                slo_min_samples=5,
                slo_window_s=60.0,
            ),
        )
        server.start()
        entered = threading.Event()
        release = threading.Event()

        def blocking_infer(graphs):
            entered.set()
            assert release.wait(timeout=15.0)
            return np.full((len(graphs), 2), 0.5), {
                "model": "default", "version": 1, "classes": [0, 1],
            }

        batcher = MicroBatcher(blocking_infer, max_batch=1, max_wait_ms=0, max_queue=1)
        batcher.start()
        with server._batcher_lock:
            server._batchers["default"] = batcher
        try:
            payload = ServeClient._payload([triangle], None, None)
            # Two requests park in worker + queue; the rest shed with 429
            # immediately (open-loop: offered load ignores completions).
            background = []

            def send_one():
                ServeClient(server.url).request("POST", "/v1/predict", payload)

            t1 = threading.Thread(target=send_one, daemon=True)
            t1.start()
            background.append(t1)
            assert entered.wait(timeout=5.0)  # worker parked in infer
            t2 = threading.Thread(target=send_one, daemon=True)
            t2.start()
            background.append(t2)
            deadline = time.monotonic() + 5.0
            while batcher.depth() < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert batcher.depth() >= 1  # admission queue is full
            probe = ServeClient(server.url)
            sheds = 0
            for _ in range(10):
                status, _, _ = probe.request("POST", "/v1/predict", payload)
                sheds += int(status == 429)
            assert sheds >= 8  # the flood was overwhelmingly shed
            health = probe.healthz()
            assert health["status"] == "degraded"
            assert any("errors" in b for b in health["slo"]["breaches"])
            assert "slo_degraded 1" in probe.metrics()
            assert server.slo.degraded
            probe.close()
        finally:
            release.set()
            for t in background:
                t.join(timeout=5.0)
            server.stop()


class TestResourceTelemetry:
    def test_metrics_carry_resource_gauges(self, client):
        client.healthz()  # any request; gauges are published at startup
        text = client.metrics()
        assert "resource_rss_bytes" in text
        assert "resource_peak_rss_bytes" in text
        assert "# HELP resource_rss_bytes" in text

    def test_sampler_refreshes_queue_depth(self, live_server):
        # The sampler's extra callback republishes the aggregate queue
        # depth on its cadence; with an idle server it must read 0.
        live_server._sampler.sample_once()
        assert obs.get_metrics().gauge("serve_queue_depth").value == 0.0
