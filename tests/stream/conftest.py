"""Fixtures for the streaming out-of-core pipeline suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import cache as cache_mod
from repro import obs
from repro.parallel import WORKERS_ENV
from repro.resilience import faults


# Every test in this directory belongs to the `stream` tier.
def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.stream)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """No inherited fault plan, cache, worker env, or obs state leaks."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_STATE_ENV, raising=False)
    monkeypatch.delenv(cache_mod.CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    faults.clear()
    cache_mod.reset_default_cache()
    yield
    faults.clear()
    cache_mod.reset_default_cache()
    obs.disable()
    obs.reset()


def model_fingerprint(model) -> bytes:
    """Bitwise fingerprint of a fitted model: history series + weights.

    Two models with equal fingerprints trained identically — same loss
    curve, same accuracy curve, same final parameters, bit for bit.
    """
    hist = model.history_
    parts = [
        np.asarray(hist.loss, dtype=np.float64).tobytes(),
        np.asarray(hist.train_accuracy, dtype=np.float64).tobytes(),
        np.asarray(hist.lr, dtype=np.float64).tobytes(),
        np.asarray(hist.grad_norm, dtype=np.float64).tobytes(),
    ]
    for param in model.network_.parameters():
        parts.append(param.value.tobytes())
    return b"".join(parts)
