"""FeatureMapCache mmap disk reads: zero-copy hits, corruption -> miss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import FeatureMapCache, cache_key


@pytest.fixture()
def payload():
    return {
        "tensors": np.arange(240, dtype=np.float64).reshape(4, 6, 10),
        "meta": np.array([3, 1, 4], dtype=np.int64),
    }


def write_entry(tmp_path, payload):
    key = cache_key("enc", "mmap-test")
    writer = FeatureMapCache(cache_dir=tmp_path)
    writer.put(key, payload, namespace="enc")
    path = writer._path(key)
    assert path.exists()
    return key, path


def test_disk_read_memory_maps_and_matches_bitwise(tmp_path, payload):
    key, _ = write_entry(tmp_path, payload)
    reader = FeatureMapCache(cache_dir=tmp_path)  # cold memory tier
    got = reader.get(key, namespace="enc")
    assert got is not None
    assert reader.stats.mmap_hits == 1
    assert reader.stats.disk_hits == 1
    for name, want in payload.items():
        arr = got[name]
        assert isinstance(arr, np.memmap)
        assert not arr.flags.writeable
        assert arr.dtype == want.dtype
        assert arr.shape == want.shape
        assert arr.tobytes() == want.tobytes()


def test_mmap_read_can_be_disabled(tmp_path, payload):
    key, _ = write_entry(tmp_path, payload)
    reader = FeatureMapCache(cache_dir=tmp_path, mmap_read=False)
    got = reader.get(key, namespace="enc")
    assert got is not None
    assert reader.stats.mmap_hits == 0
    assert reader.stats.disk_hits == 1
    assert not any(isinstance(a, np.memmap) for a in got.values())


def test_object_dtype_payload_falls_back_to_copying_read(tmp_path):
    keys = np.empty(2, dtype=object)
    keys[0], keys[1] = ("a", 1), ("b", 2)
    key, _ = write_entry(tmp_path, {"keys": keys})
    reader = FeatureMapCache(cache_dir=tmp_path)
    got = reader.get(key, namespace="enc")
    assert got is not None
    assert reader.stats.mmap_hits == 0  # pickled member cannot be mapped
    assert reader.stats.disk_hits == 1
    assert got["keys"][1] == ("b", 2)


def test_compressed_entry_falls_back_to_copying_read(tmp_path, payload):
    key, path = write_entry(tmp_path, payload)
    np.savez_compressed(path, **payload)  # a foreign, compressed container
    reader = FeatureMapCache(cache_dir=tmp_path)
    got = reader.get(key, namespace="enc")
    assert got is not None
    assert reader.stats.mmap_hits == 0
    assert got["tensors"].tobytes() == payload["tensors"].tobytes()


@pytest.mark.parametrize("keep_bytes", [1, 40, 0.5])
def test_truncated_entry_is_a_clean_miss_not_a_sigbus(
    tmp_path, payload, keep_bytes
):
    # Regression: mapped reads must validate member spans against the
    # real file size at *map* time.  A lazily-validated mmap would hand
    # out an array whose pages fault (SIGBUS) on first touch.
    key, path = write_entry(tmp_path, payload)
    size = path.stat().st_size
    keep = int(size * keep_bytes) if isinstance(keep_bytes, float) else keep_bytes
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    reader = FeatureMapCache(cache_dir=tmp_path)
    assert reader.get(key, namespace="enc") is None
    assert reader.stats.errors == 1
    assert reader.stats.misses == 1
    assert not path.exists()  # dropped so the next put starts clean
    reader.put(key, payload, namespace="enc")
    fresh = FeatureMapCache(cache_dir=tmp_path)
    got = fresh.get(key, namespace="enc")
    assert got is not None
    assert got["tensors"].tobytes() == payload["tensors"].tobytes()


def test_garbage_file_is_a_clean_miss(tmp_path, payload):
    key, path = write_entry(tmp_path, payload)
    path.write_bytes(b"not a zip archive at all")
    reader = FeatureMapCache(cache_dir=tmp_path)
    assert reader.get(key, namespace="enc") is None
    assert reader.stats.errors == 1
    assert not path.exists()


def test_mmap_hit_survives_memory_eviction_roundtrip(tmp_path, payload):
    # memory_items=0 forces every get through the disk tier: repeated
    # reads stay mapped (no unbounded resident growth from rereads).
    key, _ = write_entry(tmp_path, payload)
    reader = FeatureMapCache(cache_dir=tmp_path, memory_items=0)
    for i in range(3):
        got = reader.get(key, namespace="enc")
        assert got is not None
        assert isinstance(got["tensors"], np.memmap)
    assert reader.stats.mmap_hits == 3
