"""ShardPrefetcher: ordering, backpressure, restart, degradation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience import faults
from repro.stream import FAULT_POINT, ShardPrefetcher


def collect(prefetcher):
    with prefetcher:
        return list(prefetcher)


def test_yields_every_item_in_order():
    pf = ShardPrefetcher(lambda i: i * i, 17, depth=3)
    assert collect(pf) == [(i, i * i) for i in range(17)]
    assert pf.restarts == 0
    assert not pf.degraded


def test_zero_items_is_an_empty_iterator():
    assert collect(ShardPrefetcher(lambda i: i, 0)) == []


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_backpressure_bounds_lookahead(depth):
    # A fast producer against a slow consumer: the worker may only ever
    # be depth (queued) + 1 (in hand) items ahead of the consumer.
    pf = ShardPrefetcher(lambda i: i, 25, depth=depth)
    out = []
    with pf:
        for item in pf:
            time.sleep(0.002)  # let the producer run far ahead if it can
            out.append(item)
    assert out == [(i, i) for i in range(25)]
    assert pf.max_ahead <= depth + 1


def test_produce_runs_on_a_background_thread():
    seen = set()

    def produce(i):
        seen.add(threading.current_thread().name)
        return i

    pf = ShardPrefetcher(produce, 5, depth=2)
    collect(pf)
    assert seen == {"repro-stream-prefetch"}


def test_raise_fault_restarts_worker_and_loses_nothing():
    faults.install(f"raise@{FAULT_POINT}:3")
    calls = []

    def produce(i):
        calls.append(i)
        return i * 10

    pf = ShardPrefetcher(produce, 8, depth=2, max_restarts=2)
    assert collect(pf) == [(i, i * 10) for i in range(8)]
    assert pf.restarts == 1
    assert not pf.degraded
    # The worker died *before* producing item 3, so the restarted worker
    # resumed exactly there: every index produced once, in order.
    assert calls == list(range(8))


def test_kill_fault_is_silent_abrupt_death_with_requeue():
    faults.install(f"kill@{FAULT_POINT}:2")
    pf = ShardPrefetcher(lambda i: i, 6, depth=2, max_restarts=2)
    assert collect(pf) == [(i, i) for i in range(6)]
    assert pf.restarts == 1
    assert not pf.degraded


def test_repeated_deaths_degrade_to_synchronous_iteration():
    # The fault re-fires at index 0 on every (re)start; after
    # max_restarts deaths beyond the first the prefetcher degrades and
    # produces inline — the degraded path skips injection, so the
    # stream still completes, in order.
    faults.install(f"raise@{FAULT_POINT}:0x99")
    pf = ShardPrefetcher(lambda i: -i, 7, depth=2, max_restarts=2)
    assert collect(pf) == [(i, -i) for i in range(7)]
    assert pf.degraded
    assert pf.restarts == pf.max_restarts + 1


def test_degraded_mid_stream_preserves_the_tail():
    # Die twice at index 4: items 0-3 arrive prefetched, the rest inline.
    faults.install(f"kill@{FAULT_POINT}:4x99")
    pf = ShardPrefetcher(lambda i: i + 100, 9, depth=2, max_restarts=1)
    assert collect(pf) == [(i, i + 100) for i in range(9)]
    assert pf.degraded


def test_close_is_idempotent_and_stops_the_worker():
    pf = ShardPrefetcher(lambda i: i, 100, depth=1)
    it = iter(pf)
    assert next(it) == (0, 0)
    pf.close()
    pf.close()
    assert pf._thread is None


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ShardPrefetcher(lambda i: i, 3, depth=0)
    with pytest.raises(ValueError):
        ShardPrefetcher(lambda i: i, -1)
    with pytest.raises(ValueError):
        ShardPrefetcher(lambda i: i, 3, max_restarts=-1)
