"""EncodedShardStore + StreamEncodedInputs vs the materialized tensor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import FeatureMapCache
from repro.core import deepmap_wl
from repro.core.pipeline import DeepMapEncoder
from repro.datasets import make_dataset
from repro.features.vertex_maps import cached_vertex_counts
from repro.features.vocabulary import FeatureVocabulary
from repro.stream import EncodedShardStore, StreamEncodedInputs, make_spool_cache


@pytest.fixture()
def encoded_reference():
    """The fully materialized pipeline: vocab, encoder, (n, w*r, m) tensor."""
    eager = make_dataset("MUTAG", scale=0.03, seed=0)
    stream = make_dataset("MUTAG", scale=0.03, seed=0, stream=True)
    model = deepmap_wl(h=2, r=3, epochs=1, seed=0)
    counts = cached_vertex_counts(model.extractor, eager.graphs)
    totals: dict = {}
    for vertex_counts in counts:
        for counter in vertex_counts:
            for key, value in counter.items():
                totals[key] = totals.get(key, 0) + value
    vocab = FeatureVocabulary()
    vocab.add_all(totals.keys())
    vocab = vocab.freeze()
    encoder = DeepMapEncoder(r=model.r, ordering=model.ordering).fit_width(
        [max(g.n for g in eager.graphs)]
    )
    matrices = [vocab.vectorize_rows(vc) for vc in counts]
    full = encoder.encode(eager.graphs, matrices).tensors
    return eager, stream, model, vocab, encoder, full


def make_store(stream, model, vocab, encoder, shard_size):
    cache, spool = make_spool_cache()
    store = EncodedShardStore(
        stream, model.extractor, vocab, encoder, shard_size, cache=cache
    )
    return store, spool


@pytest.mark.parametrize("shard_size", [1, 4, 7, 10_000])
def test_shard_tensors_equal_slices_of_the_full_encode(
    encoded_reference, shard_size
):
    _, stream, model, vocab, encoder, full = encoded_reference
    store, spool = make_store(stream, model, vocab, encoder, shard_size)
    with spool:
        store.warm()
        for s in range(store.num_shards):
            start = s * shard_size
            stop = min(start + shard_size, store.n)
            block = store.tensors(s)
            assert block.dtype == full.dtype
            assert block.tobytes() == full[start:stop].tobytes()
        assert store.reencodes == 0


def test_take_rows_matches_fancy_indexing_bitwise(encoded_reference):
    _, stream, model, vocab, encoder, full = encoded_reference
    store, spool = make_store(stream, model, vocab, encoder, shard_size=4)
    with spool:
        store.warm()
        inputs = StreamEncodedInputs(store)
        assert inputs.shape == full.shape
        assert len(inputs) == full.shape[0]
        rng = np.random.default_rng(0)
        for size in (1, 3, full.shape[0]):
            idx = rng.permutation(full.shape[0])[:size]
            got = inputs.take_rows(idx)
            want = full[idx]
            assert got.dtype == want.dtype
            assert got.tobytes() == want.tobytes()
        empty = inputs.take_rows(np.array([], dtype=np.int64))
        assert empty.shape == (0, full.shape[1], full.shape[2])


def test_cache_eviction_triggers_reencode_not_error(encoded_reference):
    _, stream, model, vocab, encoder, full = encoded_reference
    store, spool = make_store(stream, model, vocab, encoder, shard_size=4)
    with spool:
        store.warm()
        # Wipe both tiers: every later read is a miss that regenerates
        # the shard from seeds — identical bytes, just slower.
        store.cache.clear()
        block = store.tensors(0)
        assert block.tobytes() == full[:4].tobytes()
        assert store.reencodes == 1


def test_shard_keys_match_the_materialized_encode_keys(encoded_reference):
    eager, stream, model, vocab, encoder, full = encoded_reference
    shard_size = 4
    store, spool = make_store(stream, model, vocab, encoder, shard_size)
    with spool:
        store.warm()
        counts = cached_vertex_counts(model.extractor, eager.graphs)
        matrices = [vocab.vectorize_rows(vc) for vc in counts]
        for s in range(store.num_shards):
            start = s * shard_size
            stop = min(start + shard_size, store.n)
            want = encoder.encode_key(
                eager.graphs[start:stop], matrices[start:stop]
            )
            assert store._keys[s] == want


def test_store_requires_a_disk_backed_cache(encoded_reference):
    _, stream, model, vocab, encoder, _ = encoded_reference
    memory_only = FeatureMapCache(cache_dir=None)
    with pytest.raises(ValueError, match="disk-backed"):
        EncodedShardStore(
            stream, model.extractor, vocab, encoder, 4, cache=memory_only
        )


def test_store_rejects_bad_shard_size_and_index(encoded_reference):
    _, stream, model, vocab, encoder, _ = encoded_reference
    with pytest.raises(ValueError):
        make_store(stream, model, vocab, encoder, shard_size=0)
    store, spool = make_store(stream, model, vocab, encoder, shard_size=4)
    with spool:
        with pytest.raises(IndexError):
            store.encode_shard(store.num_shards)
