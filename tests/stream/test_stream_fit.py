"""fit_stream: fault tolerance and bounded memory, bitwise-equal results."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core import deepmap_wl
from repro.datasets import make_dataset
from repro.obs.resources import sample_resources
from repro.resilience import faults
from repro.stream import FAULT_POINT

from tests.stream.conftest import model_fingerprint

SCALE = 0.02  # 16 MUTAG graphs: enough for 5 shards at shard_size=4


def fresh_model(**overrides):
    params = dict(h=2, r=3, epochs=2, seed=0)
    params.update(overrides)
    return deepmap_wl(**params)


@pytest.fixture(scope="module")
def materialized_fingerprint():
    ds = make_dataset("MUTAG", scale=SCALE, seed=0)
    model = fresh_model().fit(ds.graphs, ds.y)
    return model_fingerprint(model)


@pytest.fixture()
def live_metrics():
    """Real (non-null) obs counters for the duration of one test."""
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


def stream_fit(**kwargs):
    stream = make_dataset("MUTAG", scale=SCALE, seed=0, stream=True)
    model = fresh_model()
    model.fit_stream(stream, shard_size=kwargs.pop("shard_size", 4), **kwargs)
    return model


def test_fit_stream_matches_fit_bitwise(materialized_fingerprint):
    assert model_fingerprint(stream_fit()) == materialized_fingerprint


def test_raise_fault_requeues_and_epoch_is_bitwise_identical(
    materialized_fingerprint, live_metrics
):
    # The worker dies before producing shard 1, twice (the restarted
    # worker resumes at the same index and the spec fires again); both
    # times the shard is requeued and the fitted model is
    # indistinguishable from the materialized fit.
    faults.install(f"raise@{FAULT_POINT}:1x2")
    model = stream_fit()
    assert model_fingerprint(model) == materialized_fingerprint
    assert obs.counter("stream_prefetch_restarts_total").value == 2
    assert obs.counter("stream_prefetch_worker_errors_total").value == 2
    assert obs.counter("stream_prefetch_degradations_total").value == 0


def test_kill_fault_requeues_and_epoch_is_bitwise_identical(
    materialized_fingerprint, live_metrics
):
    # Abrupt silent thread death (no error recorded) — same recovery.
    faults.install(f"kill@{FAULT_POINT}:0x2")
    model = stream_fit()
    assert model_fingerprint(model) == materialized_fingerprint
    assert obs.counter("stream_prefetch_restarts_total").value == 2
    assert obs.counter("stream_prefetch_worker_errors_total").value == 0
    assert obs.counter("stream_prefetch_degradations_total").value == 0


def test_unbounded_deaths_degrade_then_complete_bitwise(
    materialized_fingerprint, live_metrics
):
    # The fault re-fires on every restart: after max_restarts deaths the
    # prefetcher degrades to synchronous production (which skips
    # injection), so the epoch completes — still bitwise-identical.
    # Both passes (vocabulary + encode) degrade independently.
    faults.install(f"kill@{FAULT_POINT}:0x999")
    model = stream_fit(max_restarts=1)
    assert model_fingerprint(model) == materialized_fingerprint
    assert obs.counter("stream_prefetch_degradations_total").value == 2
    assert obs.counter("stream_prefetch_restarts_total").value == 2


@pytest.mark.slow
def test_100x_scale_trains_with_bounded_rss():
    # The materialized suites cap out around scale 0.05 (40 MUTAG
    # graphs, one resident (n, w*r, m) tensor).  Stream 100x that and
    # assert the working set never approaches what materializing would
    # need — the acceptance bound for the out-of-core pipeline.
    obs.reset()
    obs.enable()
    try:
        stream = make_dataset("MUTAG", scale=44.0, seed=0, stream=True)
        assert len(stream) >= 100 * 40
        model = fresh_model(h=1, r=2, epochs=1, max_features=128)

        before = sample_resources()["rss_bytes"]
        peak_seen = 0
        stop = threading.Event()

        def watch():
            nonlocal peak_seen
            while not stop.is_set():
                peak_seen = max(peak_seen, sample_resources()["rss_bytes"])
                time.sleep(0.05)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        try:
            model.fit_stream(stream, shard_size=64)
        finally:
            stop.set()
            watcher.join(timeout=5.0)

        n = len(stream)
        w, r, m = model.encoder_.w, model.r, model.vocabulary_.size
        full_tensor_bytes = n * w * r * m * 8
        growth = max(peak_seen - before, 0)
        # Materializing needs the full tensor resident; streaming holds a
        # few shards + one mini-batch.  Require a 10x margin at least.
        assert growth < full_tensor_bytes / 10, (
            f"streamed fit grew RSS by {growth / 2**20:.1f} MiB; the "
            f"materialized tensor alone is {full_tensor_bytes / 2**20:.1f} MiB"
        )
        # The Trainer's streaming mode tracked it in obs.
        assert obs.gauge("resource_peak_rss_bytes").value > 0
        assert len(model.history_.loss) == 1
        assert np.isfinite(model.history_.loss[0])
    finally:
        obs.disable()
        obs.reset()
