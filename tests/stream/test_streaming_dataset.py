"""StreamingGraphDataset: lazy source parity with the eager registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import StreamingGraphDataset, dataset_spec, make_dataset
from repro.datasets.registry import graph_seeds


def assert_graphs_equal(a, b, context: str = "") -> None:
    assert a.n == b.n, f"{context}: node count {a.n} != {b.n}"
    ea, eb = np.asarray(a.edges), np.asarray(b.edges)
    assert ea.shape == eb.shape and ea.tobytes() == eb.tobytes(), (
        f"{context}: edge lists differ"
    )
    la, lb = np.asarray(a.labels), np.asarray(b.labels)
    assert la.tobytes() == lb.tobytes(), f"{context}: vertex labels differ"


@pytest.mark.parametrize("name", ["MUTAG", "SYNTHIE", "KKI", "IMDB-BINARY"])
def test_materialize_matches_eager_dataset(name):
    eager = make_dataset(name, scale=0.03, seed=5)
    stream = make_dataset(name, scale=0.03, seed=5, stream=True)
    assert isinstance(stream, StreamingGraphDataset)
    assert len(stream) == len(eager)
    mat = stream.materialize()
    assert mat.name == eager.name
    assert mat.y.dtype == eager.y.dtype
    assert mat.y.tobytes() == eager.y.tobytes()
    for i, (a, b) in enumerate(zip(mat.graphs, eager.graphs)):
        assert_graphs_equal(a, b, context=f"{name}[{i}]")


def test_random_access_matches_iteration():
    stream = make_dataset("MUTAG", scale=0.03, seed=1, stream=True)
    via_iter = list(stream)
    for i in range(len(stream)):
        assert_graphs_equal(stream.graph(i), via_iter[i], context=f"graph({i})")
    # Negative indices and repeated access are stable (stateless generators).
    assert_graphs_equal(stream.graph(-1), via_iter[-1], context="graph(-1)")
    assert_graphs_equal(stream.graph(3), stream.graph(3), context="repeat")


def test_labels_are_lazy_and_exact():
    stream = make_dataset("MUTAG", scale=0.03, seed=0, stream=True)
    y = stream.labels()
    assert y.dtype == np.int64
    assert all(stream.label(i) == y[i] for i in range(len(stream)))
    assert (y == np.arange(len(stream)) % stream.num_classes).all()


@pytest.mark.parametrize("shard_size", [1, 3, 7, 10_000])
def test_shards_partition_the_dataset(shard_size):
    stream = make_dataset("MUTAG", scale=0.03, seed=2, stream=True)
    n = len(stream)
    shards = list(stream.iter_shards(shard_size))
    assert len(shards) == stream.num_shards(shard_size)
    covered = np.concatenate([s.indices for s in shards])
    assert covered.tobytes() == np.arange(n, dtype=np.int64).tobytes()
    flat = [g for s in shards for g in s.graphs]
    assert len(flat) == n
    for i, (a, b) in enumerate(zip(flat, stream)):
        assert_graphs_equal(a, b, context=f"shard graph {i}")
    ys = np.concatenate([s.y for s in shards])
    assert ys.tobytes() == stream.labels().tobytes()


@pytest.mark.parametrize("shard_size", [1, 5, 64])
def test_streamed_statistics_match_materialized(shard_size):
    eager = make_dataset("SYNTHIE", scale=0.05, seed=3)
    stream = make_dataset("SYNTHIE", scale=0.05, seed=3, stream=True)
    a, b = eager.statistics(), stream.statistics(shard_size=shard_size)
    assert a == b


def test_out_of_range_graph_raises():
    stream = make_dataset("MUTAG", scale=0.03, seed=0, stream=True)
    with pytest.raises(IndexError):
        stream.graph(len(stream))
    with pytest.raises(IndexError):
        stream.graph(-len(stream) - 1)


def test_seeds_reproduce_the_spawn_rngs_draw():
    # The per-graph seed table is one vectorized draw from the dataset
    # seed — the exact integers spawn_rngs would hand each graph.
    seeds = graph_seeds(9, 8)
    assert seeds.dtype == np.int64
    assert seeds.shape == (8,)
    again = graph_seeds(9, 8)
    assert seeds.tobytes() == again.tobytes()
    spec = dataset_spec("MUTAG")
    stream = StreamingGraphDataset(name="MUTAG", spec=spec, seeds=seeds)
    assert len(stream) == 8


def test_unknown_dataset_rejected():
    with pytest.raises((KeyError, ValueError)):
        make_dataset("NOT-A-DATASET", stream=True)
