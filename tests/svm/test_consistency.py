"""Consistency properties of the SVM layer used by the CV protocol."""

import numpy as np
import pytest

from repro.kernels import WeisfeilerLehmanKernel, normalize_gram
from repro.svm import KernelSVC, solve_smo


class TestDecisionConsistency:
    def test_training_points_scored_like_decision_function(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal([2, 0], 0.6, (20, 2)), rng.normal([-2, 0], 0.6, (20, 2))]
        )
        y = np.array([1] * 20 + [0] * 20)
        k = x @ x.T
        model = KernelSVC(c=10).fit(k, y)
        preds_from_rows = model.predict(k)
        scores = model.decision_function(k)
        preds_from_scores = model.classes_[scores.argmax(axis=1)]
        assert np.array_equal(preds_from_rows, preds_from_scores)

    def test_dual_objective_improves_with_c(self):
        """Larger C can only reduce training error on this noisy set."""
        rng = np.random.default_rng(1)
        x = np.vstack(
            [rng.normal([1, 0], 1.2, (30, 2)), rng.normal([-1, 0], 1.2, (30, 2))]
        )
        y = np.array([1] * 30 + [0] * 30)
        k = x @ x.T
        acc = [KernelSVC(c=c).fit(k, y).score(k, y) for c in (0.01, 1.0, 100.0)]
        assert acc[0] <= acc[-1] + 1e-9

    def test_scaling_kernel_equivalent_to_scaling_c(self):
        """K -> a*K with C -> C/a yields the same decision function."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 3))
        y = np.sign(x[:, 0]).astype(int)
        k = x @ x.T
        res1 = solve_smo(k, np.where(y > 0, 1.0, -1.0), c=1.0)
        res2 = solve_smo(4.0 * k, np.where(y > 0, 1.0, -1.0), c=0.25)
        f1 = (res1.alpha * np.where(y > 0, 1.0, -1.0)) @ k + res1.bias
        f2 = (res2.alpha * np.where(y > 0, 1.0, -1.0)) @ (4.0 * k) + res2.bias
        assert np.array_equal(np.sign(f1), np.sign(f2))

    def test_normalized_graph_kernel_end_to_end(self, small_dataset):
        graphs, y = small_dataset
        gram = normalize_gram(WeisfeilerLehmanKernel(2).gram(graphs))
        model = KernelSVC(c=10).fit(gram, y)
        assert model.score(gram, y) >= 0.8
