"""Tests for the SMO solver: analytic solutions, KKT conditions, bounds."""

import numpy as np
import pytest

from repro.svm import solve_smo


def _linear_kernel(x):
    return x @ x.T


class TestAnalyticSolutions:
    def test_two_points(self):
        # x = -1, +1 with labels -1, +1: alpha = [1/2, 1/2], b = 0.
        k = np.array([[1.0, -1.0], [-1.0, 1.0]])
        res = solve_smo(k, np.array([-1.0, 1.0]), c=10.0)
        assert np.allclose(res.alpha, [0.5, 0.5])
        assert abs(res.bias) < 1e-9
        assert res.converged

    def test_asymmetric_two_points(self):
        # x = 0, 2: maximal margin at x=1 -> f(x) = x - 1.
        x = np.array([[0.0], [2.0]])
        y = np.array([-1.0, 1.0])
        res = solve_smo(_linear_kernel(x), y, c=100.0)
        w = (res.alpha * y) @ x
        assert np.isclose(w[0], 1.0, atol=1e-6)
        assert np.isclose(res.bias, -1.0, atol=1e-6)

    def test_equality_constraint(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 3))
        y = np.sign(x[:, 0] + 0.1)
        res = solve_smo(_linear_kernel(x), y, c=1.0)
        assert abs((res.alpha * y).sum()) < 1e-9


class TestBoxConstraints:
    def test_alpha_within_box(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 2))
        y = np.sign(x[:, 0] + 0.3 * rng.normal(size=40))
        for c in (0.1, 1.0, 10.0):
            res = solve_smo(_linear_kernel(x), y, c=c)
            assert np.all(res.alpha >= -1e-12)
            assert np.all(res.alpha <= c + 1e-12)

    def test_noisy_point_hits_bound(self):
        # One mislabeled point must saturate at C.
        x = np.array([[-2.0], [-1.5], [1.5], [2.0], [-1.8]])
        y = np.array([-1.0, -1.0, 1.0, 1.0, 1.0])  # last is noise
        res = solve_smo(_linear_kernel(x), y, c=1.0)
        assert np.isclose(res.alpha[4], 1.0)


class TestKKT:
    def test_kkt_satisfied_separable(self):
        rng = np.random.default_rng(2)
        x = np.vstack(
            [rng.normal([2, 2], 0.4, (25, 2)), rng.normal([-2, -2], 0.4, (25, 2))]
        )
        y = np.array([1.0] * 25 + [-1.0] * 25)
        res = solve_smo(_linear_kernel(x), y, c=10.0)
        assert res.converged
        f = (res.alpha * y) @ _linear_kernel(x) + res.bias
        margins = y * f
        non_sv = res.alpha < 1e-8
        assert np.all(margins[non_sv] >= 1.0 - 1e-2)

    def test_kkt_satisfied_overlapping(self):
        rng = np.random.default_rng(3)
        x = np.vstack(
            [rng.normal([1, 0], 1.0, (30, 2)), rng.normal([-1, 0], 1.0, (30, 2))]
        )
        y = np.array([1.0] * 30 + [-1.0] * 30)
        res = solve_smo(_linear_kernel(x), y, c=1.0)
        assert res.converged


class TestValidation:
    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError, match="-1 or \\+1"):
            solve_smo(np.eye(2), np.array([0.0, 1.0]), c=1.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            solve_smo(np.eye(3), np.array([1.0, -1.0]), c=1.0)

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            solve_smo(np.eye(2), np.array([1.0, -1.0]), c=0.0)

    def test_empty_problem(self):
        res = solve_smo(np.zeros((0, 0)), np.zeros(0), c=1.0)
        assert res.converged
        assert res.alpha.size == 0

    def test_support_indices(self):
        k = np.array([[1.0, -1.0], [-1.0, 1.0]])
        res = solve_smo(k, np.array([-1.0, 1.0]), c=10.0)
        assert res.support_indices().tolist() == [0, 1]
