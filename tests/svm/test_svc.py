"""Tests for the kernel C-SVM classifier and per-fold C selection."""

import numpy as np
import pytest

from repro.svm import DEFAULT_C_GRID, KernelSVC, select_c


@pytest.fixture
def binary_problem():
    rng = np.random.default_rng(0)
    x = np.vstack(
        [rng.normal([2, 2], 0.5, (30, 2)), rng.normal([-2, -2], 0.5, (30, 2))]
    )
    y = np.array([1] * 30 + [0] * 30)
    return x @ x.T, y


@pytest.fixture
def multiclass_problem():
    rng = np.random.default_rng(1)
    x = np.vstack(
        [
            rng.normal([3, 0], 0.4, (20, 2)),
            rng.normal([-3, 0], 0.4, (20, 2)),
            rng.normal([0, 3], 0.4, (20, 2)),
        ]
    )
    y = np.repeat([0, 1, 2], 20)
    return x @ x.T, y


class TestBinary:
    def test_separable_perfect(self, binary_problem):
        k, y = binary_problem
        model = KernelSVC(c=10).fit(k, y)
        assert model.score(k, y) == 1.0

    def test_classes_recorded(self, binary_problem):
        k, y = binary_problem
        model = KernelSVC().fit(k, y + 5)  # labels 5, 6
        assert model.classes_.tolist() == [5, 6]
        assert set(model.predict(k)) <= {5, 6}

    def test_decision_function_shape(self, binary_problem):
        k, y = binary_problem
        model = KernelSVC().fit(k, y)
        assert model.decision_function(k[:7]).shape == (7, 2)

    def test_holdout_prediction(self, binary_problem):
        k, y = binary_problem
        train = np.arange(0, 60, 2)
        test = np.arange(1, 60, 2)
        model = KernelSVC(c=10).fit(k[np.ix_(train, train)], y[train])
        acc = model.score(k[np.ix_(test, train)], y[test])
        assert acc == 1.0


class TestMulticlass:
    def test_three_classes(self, multiclass_problem):
        k, y = multiclass_problem
        model = KernelSVC(c=10).fit(k, y)
        assert model.score(k, y) == 1.0

    def test_ovr_has_one_row_per_class(self, multiclass_problem):
        k, y = multiclass_problem
        model = KernelSVC().fit(k, y)
        assert model._dual_coef.shape == (3, y.size)


class TestValidation:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KernelSVC().predict(np.zeros((1, 2)))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            KernelSVC().fit(np.eye(3), [1, 1, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KernelSVC().fit(np.eye(3), [0, 1])

    def test_bad_c_rejected(self):
        with pytest.raises(ValueError):
            KernelSVC(c=-1.0)


class TestSelectC:
    def test_returns_grid_value(self, binary_problem):
        k, y = binary_problem
        assert select_c(k, y) in DEFAULT_C_GRID

    def test_custom_grid(self, binary_problem):
        k, y = binary_problem
        assert select_c(k, y, grid=(0.5, 2.0)) in (0.5, 2.0)

    def test_tiny_training_set_falls_back(self):
        k = np.eye(2)
        y = np.array([0, 1])
        assert select_c(k, y) == DEFAULT_C_GRID[0]

    def test_deterministic(self, multiclass_problem):
        k, y = multiclass_problem
        assert select_c(k, y, seed=7) == select_c(k, y, seed=7)
