"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "PTC_MR"])
        assert args.model == "deepmap-wl"
        assert args.folds == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "PTC_MR", "--model", "transformer"]
            )


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "PTC_MR" in out and "COLLAB" in out

    def test_stats(self, capsys):
        assert main(["stats", "PTC_MR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "graphs:   40" in out

    def test_train_neural(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "deepmap-wl",
                "--scale", "0.05", "--folds", "2", "--epochs", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_train_kernel(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_train_prints_fold_times(self, capsys):
        main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
            ]
        )
        out = capsys.readouterr().out
        assert "fold times:" in out
        assert "selected C per fold:" in out

    def test_export_roundtrip(self, tmp_path, capsys):
        code = main(
            ["export", "--dataset", "PTC_MR", "--out", str(tmp_path / "PTC_MR"),
             "--scale", "0.05"]
        )
        assert code == 0
        from repro.datasets.tu_format import load_tu_dataset

        loaded = load_tu_dataset(tmp_path / "PTC_MR")
        assert len(loaded) == 40


class TestObservability:
    """Smoke coverage for --profile / --log-json / report."""

    def test_help_epilog_documents_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "--profile" in out
        assert "--log-json" in out
        assert "repro report" in out

    def test_train_profile_smoke(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "deepmap-wl",
                "--scale", "0.05", "--folds", "2", "--epochs", "2",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("cv", "fold", "fit", "feature_map", "encode",
                      "alignment", "receptive_field", "train"):
            assert stage in out, f"missing stage {stage!r} in profile tree"
        from repro import obs

        assert not obs.enabled()  # CLI turns observability back off

    def test_train_log_json_then_report(self, tmp_path, capsys):
        run_file = tmp_path / "run.jsonl"
        code = main(
            [
                "train", "--dataset", "MUTAG", "--model", "deepmap-wl",
                "--epochs", "2", "--folds", "2", "--scale", "0.05",
                "--profile", "--log-json", str(run_file),
            ]
        )
        assert code == 0
        train_out = capsys.readouterr().out
        assert run_file.exists()

        code = main(["report", str(run_file)])
        assert code == 0
        report_out = capsys.readouterr().out
        assert "stage timings" in report_out
        assert "training telemetry" in report_out
        assert "[fold 0]" in report_out and "[fold 1]" in report_out
        # The offline reconstruction prints the exact same stage tree the
        # live --profile run did.
        tree_lines = [l for l in train_out.splitlines() if l.startswith("cv")]
        assert tree_lines and all(l in report_out for l in tree_lines)

    def test_report_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_train_kernel_with_log_json(self, tmp_path, capsys):
        run_file = tmp_path / "kernel.jsonl"
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
                "--log-json", str(run_file),
            ]
        )
        assert code == 0
        code = main(["report", str(run_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "gram" in out


def _ops_span(name, trace_id, duration, offset=None, **attrs):
    record = {
        "kind": "span",
        "name": name,
        "duration_s": duration,
        "attrs": {"trace_id": trace_id, **attrs},
    }
    if offset is not None:
        record["attrs"]["offset_s"] = offset
    return record


def _ops_access(status, duration_ms):
    return {
        "kind": "event",
        "name": "http_access",
        "attrs": {"method": "POST", "path": "/v1/predict",
                  "status": status, "duration_ms": duration_ms},
    }


class TestOps:
    """`repro ops` reconstructs traces and SLO summaries from run JSONL."""

    @pytest.fixture
    def run_file(self, tmp_path):
        import json

        records = [
            _ops_span("queue_wait", "feedbeef00000001", 0.001, offset=0.0005),
            _ops_span("infer", "feedbeef00000001", 0.004, offset=0.002),
            _ops_span("serialize", "feedbeef00000001", 0.0005, offset=0.007),
            _ops_span(
                "request", "feedbeef00000001", 0.009,
                endpoint="predict", model="default", status=200, batch_id="b3",
            ),
        ]
        # Enough traffic to clear the SLO min-sample floor: 1/31 ~ 3.2%
        # errors sits between the loose and tight targets below.
        records += [_ops_access(200, 5.0)] * 30 + [_ops_access(429, 1.0)]
        path = tmp_path / "serve.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_ops_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ops"])

    def test_help_epilog_documents_ops(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "repro ops trace" in out
        assert "repro ops slo" in out

    def test_trace_renders_waterfall(self, run_file, capsys):
        assert main(["ops", "trace", "feedbeef00000001", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "feedbeef00000001" in out
        assert "infer" in out and "serialize" in out
        assert "accounted" in out

    def test_trace_json_output(self, run_file, capsys):
        import json

        code = main(["ops", "trace", "feedbeef00000001", str(run_file), "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["batch_id"] == "b3"
        assert [s["name"] for s in record["spans"]] == [
            "queue_wait", "infer", "serialize",
        ]

    def test_trace_not_found_is_2(self, run_file, capsys):
        assert main(["ops", "trace", "0123456789abcdef", str(run_file)]) == 2
        assert "not found" in capsys.readouterr().out

    def test_trace_without_source_is_2(self, capsys):
        assert main(["ops", "trace", "feedbeef00000001"]) == 2
        assert "RUN.jsonl" in capsys.readouterr().out

    def test_traces_lists_requests(self, run_file, capsys):
        assert main(["ops", "traces", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "trace_id" in out
        assert "feedbeef00000001" in out and "predict" in out

    def test_slo_ok_and_degraded_exit_codes(self, run_file, capsys):
        code = main(["ops", "slo", str(run_file), "--error-rate-target", "0.05"])
        assert code == 0
        assert "SLO status: ok" in capsys.readouterr().out
        # The default 1% error budget is tighter than the recorded 3.2%.
        assert main(["ops", "slo", str(run_file)]) == 1
        assert "DEGRADED" in capsys.readouterr().out
