"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "PTC_MR"])
        assert args.model == "deepmap-wl"
        assert args.folds == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "PTC_MR", "--model", "transformer"]
            )


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "PTC_MR" in out and "COLLAB" in out

    def test_stats(self, capsys):
        assert main(["stats", "PTC_MR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "graphs:   40" in out

    def test_train_neural(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "deepmap-wl",
                "--scale", "0.05", "--folds", "2", "--epochs", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_train_kernel(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_train_prints_fold_times(self, capsys):
        main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
            ]
        )
        out = capsys.readouterr().out
        assert "fold times:" in out
        assert "selected C per fold:" in out

    def test_export_roundtrip(self, tmp_path, capsys):
        code = main(
            ["export", "--dataset", "PTC_MR", "--out", str(tmp_path / "PTC_MR"),
             "--scale", "0.05"]
        )
        assert code == 0
        from repro.datasets.tu_format import load_tu_dataset

        loaded = load_tu_dataset(tmp_path / "PTC_MR")
        assert len(loaded) == 40


class TestObservability:
    """Smoke coverage for --profile / --log-json / report."""

    def test_help_epilog_documents_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "--profile" in out
        assert "--log-json" in out
        assert "repro report" in out

    def test_train_profile_smoke(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "deepmap-wl",
                "--scale", "0.05", "--folds", "2", "--epochs", "2",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("cv", "fold", "fit", "feature_map", "encode",
                      "alignment", "receptive_field", "train"):
            assert stage in out, f"missing stage {stage!r} in profile tree"
        from repro import obs

        assert not obs.enabled()  # CLI turns observability back off

    def test_train_log_json_then_report(self, tmp_path, capsys):
        run_file = tmp_path / "run.jsonl"
        code = main(
            [
                "train", "--dataset", "MUTAG", "--model", "deepmap-wl",
                "--epochs", "2", "--folds", "2", "--scale", "0.05",
                "--profile", "--log-json", str(run_file),
            ]
        )
        assert code == 0
        train_out = capsys.readouterr().out
        assert run_file.exists()

        code = main(["report", str(run_file)])
        assert code == 0
        report_out = capsys.readouterr().out
        assert "stage timings" in report_out
        assert "training telemetry" in report_out
        assert "[fold 0]" in report_out and "[fold 1]" in report_out
        # The offline reconstruction prints the exact same stage tree the
        # live --profile run did.
        tree_lines = [l for l in train_out.splitlines() if l.startswith("cv")]
        assert tree_lines and all(l in report_out for l in tree_lines)

    def test_report_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_train_kernel_with_log_json(self, tmp_path, capsys):
        run_file = tmp_path / "kernel.jsonl"
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
                "--log-json", str(run_file),
            ]
        )
        assert code == 0
        code = main(["report", str(run_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "gram" in out
