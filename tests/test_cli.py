"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "PTC_MR"])
        assert args.model == "deepmap-wl"
        assert args.folds == 3

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "PTC_MR", "--model", "transformer"]
            )


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "PTC_MR" in out and "COLLAB" in out

    def test_stats(self, capsys):
        assert main(["stats", "PTC_MR", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "graphs:   40" in out

    def test_train_neural(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "deepmap-wl",
                "--scale", "0.05", "--folds", "2", "--epochs", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_train_kernel(self, capsys):
        code = main(
            [
                "train", "--dataset", "PTC_MR", "--model", "wl-svm",
                "--scale", "0.05", "--folds", "2",
            ]
        )
        assert code == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_export_roundtrip(self, tmp_path, capsys):
        code = main(
            ["export", "--dataset", "PTC_MR", "--out", str(tmp_path / "PTC_MR"),
             "--scale", "0.05"]
        )
        assert code == 0
        from repro.datasets.tu_format import load_tu_dataset

        loaded = load_tu_dataset(tmp_path / "PTC_MR")
        assert len(loaded) == 40
