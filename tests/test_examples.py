"""Static checks on the example scripts.

Full example runs take minutes each (they are exercised manually and by
CI nightly); here we verify every example imports cleanly — catching
syntax errors, missing symbols, and API drift — and follows the repo
conventions (a module docstring and a main() entry point).
"""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_imports_cleanly(self, path):
        module = _load_module(path)
        assert hasattr(module, "main"), f"{path.name} lacks a main() entry point"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_has_docstring_and_guard(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        source = path.read_text()
        assert '__name__ == "__main__"' in source
