"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import deepmap_sp, deepmap_wl, make_dataset
from repro.baselines import GINClassifier
from repro.eval import evaluate_kernel_svm, evaluate_neural_model, train_test_split
from repro.features import WLVertexFeatures
from repro.kernels import ShortestPathKernel, WeisfeilerLehmanKernel


@pytest.fixture(scope="module")
def imdb():
    return make_dataset("IMDB-BINARY", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def ptc():
    return make_dataset("PTC_MR", scale=0.15, seed=0)


class TestKernelPipeline:
    def test_wl_svm_beats_chance_on_imdb(self, imdb):
        res = evaluate_kernel_svm(WeisfeilerLehmanKernel(3), imdb, n_splits=3, seed=0)
        chance = max(np.bincount(imdb.y)) / len(imdb)
        assert res.mean > chance + 0.05

    def test_sp_svm_runs_on_ptc(self, ptc):
        res = evaluate_kernel_svm(ShortestPathKernel(), ptc, n_splits=3, seed=0)
        assert 0.0 <= res.mean <= 1.0


class TestDeepMapPipeline:
    def test_deepmap_wl_beats_chance(self, imdb):
        train, test = train_test_split(imdb.y, 0.25, seed=0)
        model = deepmap_wl(h=2, r=4, epochs=20, seed=0)
        model.fit([imdb.graphs[i] for i in train], imdb.y[train])
        acc = model.score([imdb.graphs[i] for i in test], imdb.y[test])
        chance = max(np.bincount(imdb.y[test])) / len(test)
        assert acc > chance

    def test_deepmap_improves_over_kernel_on_train(self, imdb):
        """The representational-power claim (Fig. 6): the deep model fits
        the training data better than the linear kernel machine."""
        train, _ = train_test_split(imdb.y, 0.3, seed=0)
        graphs = [imdb.graphs[i] for i in train]
        y = imdb.y[train]
        model = deepmap_wl(h=2, r=4, epochs=30, seed=0)
        model.fit(graphs, y)
        deep_train_acc = max(model.history_.train_accuracy)
        from repro.kernels import normalize_gram
        from repro.svm import KernelSVC

        gram = normalize_gram(WeisfeilerLehmanKernel(2).gram(graphs))
        svm_train_acc = KernelSVC(c=10).fit(gram, y).score(gram, y)
        assert deep_train_acc >= svm_train_acc - 0.15

    def test_full_neural_protocol(self, ptc):
        res = evaluate_neural_model(
            lambda fold: deepmap_sp(r=3, epochs=5, seed=fold),
            ptc,
            n_splits=3,
            seed=0,
        )
        assert len(res.fold_accuracies) == 3


class TestBaselineParity:
    def test_gin_both_input_modes(self, imdb):
        train, test = train_test_split(imdb.y, 0.25, seed=0)
        tr_graphs = [imdb.graphs[i] for i in train]
        te_graphs = [imdb.graphs[i] for i in test]
        onehot = GINClassifier(epochs=8, seed=0)
        onehot.fit(tr_graphs, imdb.y[train])
        vfm = GINClassifier(features=WLVertexFeatures(h=1), epochs=8, seed=0)
        vfm.fit(tr_graphs, imdb.y[train])
        for model in (onehot, vfm):
            preds = model.predict(te_graphs)
            assert preds.shape == (len(te_graphs),)


class TestModelComparison:
    def test_mcnemar_between_models(self, imdb):
        """The significance machinery composes with real models."""
        from repro.eval import mcnemar_test
        from repro.kernels import WeisfeilerLehmanKernel, normalize_gram
        from repro.svm import KernelSVC

        train, test = train_test_split(imdb.y, 0.3, seed=0)
        dm = deepmap_wl(h=2, r=3, epochs=8, seed=0)
        dm.fit([imdb.graphs[i] for i in train], imdb.y[train])
        pred_dm = dm.predict([imdb.graphs[i] for i in test])

        gram = normalize_gram(WeisfeilerLehmanKernel(2).gram(imdb.graphs))
        svm = KernelSVC(c=10).fit(gram[np.ix_(train, train)], imdb.y[train])
        pred_svm = svm.predict(gram[np.ix_(test, train)])

        stat, p = mcnemar_test(imdb.y[test], pred_dm, pred_svm)
        assert stat >= 0.0
        assert 0.0 <= p <= 1.0

    def test_cv_result_format_usable_in_reports(self, ptc):
        from repro.eval import evaluate_kernel_svm
        from repro.kernels import ShortestPathKernel

        res = evaluate_kernel_svm(ShortestPathKernel(), ptc, n_splits=3, seed=0)
        formatted = res.formatted()
        mean_str, std_str = formatted.split("+-")
        assert 0 <= float(mean_str) <= 100
        assert 0 <= float(std_str) <= 100


class TestTheorem1EndToEnd:
    def test_isomorphic_graphs_same_prediction(self):
        """Theorem 1: isomorphic graphs get identical deep feature maps,
        hence identical predictions."""
        ds = make_dataset("PTC_MR", scale=0.12, seed=0)
        model = deepmap_wl(h=2, r=3, epochs=5, seed=0)
        model.fit(ds.graphs, ds.y)
        g = ds.graphs[0]
        rng = np.random.default_rng(1)
        perm = rng.permutation(g.n).tolist()
        h = g.relabel_vertices(perm)
        emb_g = model.transform([g])
        emb_h = model.transform([h])
        assert np.allclose(emb_g, emb_h, atol=1e-8)
