"""The public API surface: everything advertised in __all__ must resolve
and the paper's example flows must be expressible through `repro.*`."""

import importlib

import numpy as np
import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.features",
    "repro.kernels",
    "repro.nn",
    "repro.svm",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.eval",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_paper_workflow_through_top_level():
    """The README quickstart must work verbatim through `repro`."""
    import repro

    dataset = repro.make_dataset("PTC_MR", scale=0.12, seed=0)
    model = repro.deepmap_wl(h=1, r=3, epochs=2, seed=0)
    model.fit(dataset.graphs, dataset.y)
    preds = model.predict(dataset.graphs)
    assert preds.shape == (len(dataset),)
    emb = model.transform(dataset.graphs[:4])
    assert emb.shape == (4, 8)


def test_docstrings_on_public_entry_points():
    """Every public class/function carries a docstring."""
    import repro
    import repro.baselines
    import repro.core
    import repro.kernels

    for mod in (repro.core, repro.kernels, repro.baselines):
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj):
                assert obj.__doc__, f"{mod.__name__}.{name} lacks a docstring"
