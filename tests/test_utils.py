"""Tests for the utility layer."""

import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    as_rng,
    check_fitted,
    check_labels,
    check_positive,
    check_probability,
    spawn_rngs,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        assert as_rng(5).integers(0, 100) == as_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(0, 3)
        values = [s.integers(0, 2**31) for s in streams]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [s.integers(0, 100) for s in spawn_rngs(7, 4)]
        b = [s.integers(0, 100) for s in spawn_rngs(7, 4)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_ok(self):
        assert spawn_rngs(0, 0) == []


class TestValidation:
    def test_check_positive_strict(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_positive_nonstrict(self):
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_labels_accepts_float_integers(self):
        out = check_labels(np.array([0.0, 1.0, 2.0]))
        assert out.dtype == np.int64

    def test_check_labels_rejects_fractions(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0.5, 1.0]))

    def test_check_labels_rejects_2d(self):
        with pytest.raises(ValueError):
            check_labels(np.zeros((2, 2)))

    def test_check_labels_rejects_empty(self):
        with pytest.raises(ValueError):
            check_labels([])

    def test_check_fitted(self):
        class Thing:
            attr = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Thing(), "attr")

        thing = Thing()
        thing.attr = 1
        check_fitted(thing, "attr")  # no raise


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_resets_per_use(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first

    def test_elapsed_readable_while_running(self):
        t = Timer()
        with t:
            mid = t.elapsed
            time.sleep(0.01)
            later = t.elapsed
        assert mid >= 0.0
        assert later > mid
        assert t.elapsed >= later  # frozen at exit

    def test_elapsed_frozen_after_exit(self):
        with Timer() as t:
            pass
        first = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == first

    def test_reexported_from_obs(self):
        from repro import obs

        assert obs.Timer is Timer
