"""Shared frame-damage generators for wire-format fuzzing.

Every consumer of `repro.utils.wire` frames — the dist protocol
(tests/dist/test_wire.py) and the serving binary codec
(tests/serve/test_codec_binary.py) — must survive the same corpus of
torn, bit-flipped, and garbage frames.  Keeping the generators here
means a new damage pattern added for one consumer automatically fuzzes
the others.
"""

from collections.abc import Iterator

import numpy as np


def torn_frames(blob: bytes) -> Iterator[bytes]:
    """Truncations of a sealed frame: empty, mid-prelude, mid-payload."""
    for cut in sorted({0, 1, 4, 8, len(blob) // 2, len(blob) - 3, len(blob) - 1}):
        if 0 <= cut < len(blob):
            yield blob[:cut]


def bitflipped_frames(blob: bytes, *, flips: int = 32, seed: int = 7) -> Iterator[bytes]:
    """Single-bit flips at deterministic pseudo-random positions.

    A flip may land somewhere value-preserving (e.g. an unchecked flag
    bit), so consumers should assert *decode cleanly or raise their
    documented error* — anything else (a crash deeper in the stack) is
    the bug this corpus hunts.
    """
    rng = np.random.default_rng(seed)
    for _ in range(flips):
        pos = int(rng.integers(0, len(blob)))
        damaged = bytearray(blob)
        damaged[pos] ^= 1 << int(rng.integers(0, 8))
        yield bytes(damaged)


def garbage_frames(blob: bytes) -> Iterator[bytes]:
    """Inputs that are not frames at all (plus a magic-smashed one)."""
    yield from (b"", b"garbage", b"\x00" * 64, b"{}", blob[::-1])
    if len(blob) > 4:
        yield b"XXXX" + blob[4:]
